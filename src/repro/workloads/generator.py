"""Random twig workload generator.

The paper evaluates hand-picked queries; a robustness study needs many.
:class:`RandomTwigGenerator` samples twigs that are *structurally
plausible* for a given database: edges are drawn from tag pairs that
actually occur in an ancestor-descendant relationship in the data, so
generated queries have non-trivial answers with controllable
probability, while a configurable fraction of "miss" edges keeps
zero-answer queries in the mix.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.labeling.interval import LabeledTree
from repro.predicates.base import TagPredicate
from repro.query.pattern import PatternNode, PatternTree


def observed_containments(tree: LabeledTree) -> dict[str, set[str]]:
    """Tag-level containment observed in the data: ancestor tag ->
    set of tags occurring among its descendants.

    One pre-order sweep with an ancestor-tag stack; O(N * depth).
    """
    containments: dict[str, set[str]] = {}
    stack: list[tuple[int, str]] = []  # (end_label, tag)
    for index in range(len(tree)):
        start = int(tree.start[index])
        while stack and stack[-1][0] < start:
            stack.pop()
        tag = tree.elements[index].tag
        for _, ancestor_tag in stack:
            containments.setdefault(ancestor_tag, set()).add(tag)
        stack.append((int(tree.end[index]), tag))
    return containments


class RandomTwigGenerator:
    """Generate random twig queries plausible for a labeled tree.

    Parameters
    ----------
    tree:
        The database the workload targets.
    seed:
        RNG seed (generation is deterministic per seed).
    miss_probability:
        Chance that an edge is drawn *outside* the observed containment
        relation, producing likely-empty subqueries (estimators must
        handle those gracefully too).
    """

    def __init__(
        self, tree: LabeledTree, seed: int = 0, miss_probability: float = 0.1
    ) -> None:
        self.tree = tree
        self._rng = random.Random(seed)
        self.miss_probability = miss_probability
        self._containments = observed_containments(tree)
        self._tags = sorted({e.tag for e in tree.elements})
        self._roots = sorted(
            tag for tag, kids in self._containments.items() if kids
        )

    def generate(self, size: int) -> PatternTree:
        """Generate one twig with ``size`` nodes (size >= 2)."""
        if size < 2:
            raise ValueError("a twig needs at least 2 nodes")
        if not self._roots:
            raise ValueError("the tree has no nested tags to query")
        root_tag = self._rng.choice(self._roots)
        root = PatternNode(TagPredicate(root_tag))
        open_nodes: list[tuple[PatternNode, str]] = [(root, root_tag)]
        for _ in range(size - 1):
            parent, parent_tag = self._rng.choice(open_nodes)
            child_tag = self._pick_child_tag(parent_tag)
            child = parent.add_child(TagPredicate(child_tag))
            if self._containments.get(child_tag):
                open_nodes.append((child, child_tag))
        return PatternTree(root)

    def workload(self, count: int, min_size: int = 2, max_size: int = 5) -> list[PatternTree]:
        """Generate ``count`` twigs with sizes uniform in the range."""
        if min_size > max_size:
            raise ValueError("min_size must be <= max_size")
        return [
            self.generate(self._rng.randint(min_size, max_size))
            for _ in range(count)
        ]

    def _pick_child_tag(self, parent_tag: str) -> str:
        reachable = sorted(self._containments.get(parent_tag, ()))
        if not reachable or self._rng.random() < self.miss_probability:
            return self._rng.choice(self._tags)
        return self._rng.choice(reachable)
