"""Query workloads for the experiment harnesses."""

from repro.workloads.generator import RandomTwigGenerator, observed_containments
from repro.workloads.metrics import ErrorSummary, q_error, relative_error
from repro.workloads.queries import (
    DBLP_SIMPLE_QUERIES,
    DBLP_TWIG_QUERIES,
    ORGCHART_SIMPLE_QUERIES,
    ORGCHART_TWIG_QUERIES,
)

__all__ = [
    "DBLP_SIMPLE_QUERIES",
    "DBLP_TWIG_QUERIES",
    "ErrorSummary",
    "ORGCHART_SIMPLE_QUERIES",
    "ORGCHART_TWIG_QUERIES",
    "RandomTwigGenerator",
    "observed_containments",
    "q_error",
    "relative_error",
]
