"""The query workloads of the paper's evaluation section.

Simple (two-node) queries are given as (ancestor-tag, descendant-tag)
pairs, exactly the rows of Tables 2 and 4.  Twig workloads extend them
with the multi-branch patterns the paper says it also ran (Section 5.2,
"we ran all types of queries we presented above"), including the
XQuery example from the introduction.
"""

#: Table 2 rows: simple queries on the DBLP data set.
DBLP_SIMPLE_QUERIES: list[tuple[str, str]] = [
    ("article", "author"),
    ("article", "cdrom"),
    ("article", "cite"),
    ("book", "cdrom"),
]

#: Extra DBLP twig patterns (intro example shape, bibliography flavor).
DBLP_TWIG_QUERIES: list[str] = [
    "//article[.//author]//cite",
    "//article[.//year]//author",
    "//inproceedings[.//author][.//cite]//title",
    "//dblp//article[.//author][.//url]//year",
]

#: Table 4 rows: simple queries on the synthetic orgchart data set.
ORGCHART_SIMPLE_QUERIES: list[tuple[str, str]] = [
    ("manager", "department"),
    ("manager", "employee"),
    ("manager", "email"),
    ("department", "employee"),
    ("department", "email"),
    ("employee", "name"),
    ("employee", "email"),
]

#: Orgchart twigs, including the paper's introductory faculty-style twig
#: transposed to the synthetic schema.
ORGCHART_TWIG_QUERIES: list[str] = [
    "//manager//department[.//employee]//email",
    "//manager[.//email]//employee//name",
    "//department[.//employee][.//department]//email",
    "//manager//department//employee[.//name]//email",
]
