"""Error metrics for estimation quality studies.

The paper reports estimate-vs-real per query and estimate/real ratio
curves; modern cardinality-estimation practice summarises workloads
with the q-error (max(est/real, real/est)).  This module provides both,
plus a :class:`ErrorSummary` aggregating a workload run into the
percentile view the robustness bench prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def relative_error(estimate: float, real: float) -> float:
    """|estimate - real| / real (real = 0 handled as absolute error)."""
    if real == 0:
        return abs(estimate)
    return abs(estimate - real) / real


def q_error(estimate: float, real: float, floor: float = 1.0) -> float:
    """max(est/real, real/est) with both sides floored at ``floor``.

    The floor keeps near-zero answers from exploding the metric, the
    standard convention in cardinality-estimation benchmarks.
    """
    est = max(estimate, floor)
    true = max(real, floor)
    return max(est / true, true / est)


@dataclass
class ErrorSummary:
    """Percentile summary of a workload's q-errors."""

    count: int
    mean: float
    geometric_mean: float
    median: float
    p90: float
    p99: float
    worst: float

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[tuple[float, float]], floor: float = 1.0
    ) -> "ErrorSummary":
        """Build from (estimate, real) pairs."""
        if not pairs:
            raise ValueError("need at least one (estimate, real) pair")
        errors = sorted(q_error(e, r, floor) for e, r in pairs)
        count = len(errors)

        def percentile(fraction: float) -> float:
            index = min(count - 1, int(math.ceil(fraction * count)) - 1)
            return errors[max(index, 0)]

        return cls(
            count=count,
            mean=sum(errors) / count,
            geometric_mean=math.exp(sum(math.log(e) for e in errors) / count),
            median=percentile(0.5),
            p90=percentile(0.9),
            p99=percentile(0.99),
            worst=errors[-1],
        )

    def as_row(self) -> list:
        """Row cells for :func:`repro.utils.tables.format_table`."""
        return [
            self.count,
            round(self.geometric_mean, 2),
            round(self.median, 2),
            round(self.p90, 2),
            round(self.p99, 2),
            round(self.worst, 2),
        ]
