"""Lazy forest proxies for mapped-checkpoint warm starts.

A full checkpoint stores the forest twice over: flat label arrays (mmap
views, essentially free to adopt) and the numpy-native element encoding
that :func:`repro.service.wal._decode_forest` expands into millions of
``Element`` objects -- the dominant cost of an eager warm start.  A
*lazy* open defers that expansion: the service's ``documents`` list and
the tree's ``elements`` list become list subclasses that answer
``len()`` from the checkpoint metadata and materialise the real objects
on first element access (indexing, iteration, membership, mutation).

Both proxies share one :class:`LazyForestState`, so whichever side is
touched first runs the decode exactly once; estimation over tag
predicates never touches either (the catalog's per-tag index is seeded
from the stored tag-code segment), so a read-only serving process keeps
the forest on disk for its whole lifetime.

The proxies ARE lists (``isinstance(x, list)`` holds, C-level list
storage backs them after the first touch), so every consumer that walks
or splices ``tree.elements`` keeps working unchanged; only ``len()``
and truthiness are answered without forcing.  Note the one sharp edge
of subclassing ``list``: C-level comparisons and concatenation read the
raw storage, so those are overridden to materialise first.
"""

from __future__ import annotations

import threading
from typing import Callable


class LazyForestState:
    """Shared run-once thunk producing ``(documents, elements)``.

    ``force()`` is thread-safe (snapshot readers on the serve tier may
    race a writer into the first touch) and validates the decoded
    lengths against the checkpoint metadata -- a mismatch raises
    :class:`~repro.histograms.store.SummaryFormatError` exactly like an
    eager load would have at recovery time.
    """

    __slots__ = ("_thunk", "_result", "_lock", "expected_documents",
                 "expected_elements")

    def __init__(
        self,
        thunk: Callable[[], tuple[list, list]],
        expected_documents: int,
        expected_elements: int,
    ) -> None:
        self._thunk = thunk
        self._result = None
        self._lock = threading.Lock()
        self.expected_documents = int(expected_documents)
        self.expected_elements = int(expected_elements)

    @property
    def forced(self) -> bool:
        return self._thunk is None

    def force(self) -> tuple[list, list]:
        with self._lock:
            if self._thunk is not None:
                from repro.histograms.store import SummaryFormatError

                documents, elements = self._thunk()
                if (
                    len(documents) != self.expected_documents
                    or len(elements) != self.expected_elements
                ):
                    raise SummaryFormatError(
                        f"lazy checkpoint decoded {len(documents)} documents /"
                        f" {len(elements)} elements; metadata promised "
                        f"{self.expected_documents} / {self.expected_elements}"
                    )
                self._result = (documents, elements)
                self._thunk = None
            return self._result


class _LazyList(list):
    """A list whose contents materialise on first touch.

    ``len()`` and truthiness come from the declared length so the hot
    bookkeeping paths (``len(tree)``, checkpoint gating, catalog
    emptiness checks) never force; everything that actually reads or
    writes an element does.
    """

    __slots__ = ("_state", "_length")
    #: Which half of ``LazyForestState.force()`` this proxy holds.
    _SLOT = 0

    def __init__(self, state: LazyForestState, length: int) -> None:
        super().__init__()
        self._state = state
        self._length = int(length)

    def _materialize(self) -> "list":
        state = self._state
        if state is not None:
            items = state.force()[type(self)._SLOT]
            self._state = None  # before extend: len() must switch source
            super().extend(items)
        return self

    @property
    def materialized(self) -> bool:
        return self._state is None

    def __len__(self) -> int:
        if self._state is not None:
            return self._length
        return super().__len__()

    # -- reads force -----------------------------------------------------

    def __getitem__(self, key):
        self._materialize()
        return super().__getitem__(key)

    def __iter__(self):
        self._materialize()
        return super().__iter__()

    def __reversed__(self):
        self._materialize()
        return super().__reversed__()

    def __contains__(self, item):
        self._materialize()
        return super().__contains__(item)

    def index(self, *args):
        self._materialize()
        return super().index(*args)

    def count(self, item):
        self._materialize()
        return super().count(item)

    def copy(self):
        self._materialize()
        return list(self)

    # -- C-level storage readers must force both sides -------------------

    def __eq__(self, other):
        self._materialize()
        if isinstance(other, _LazyList):
            other._materialize()
        return list.__eq__(self, other)

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __add__(self, other):
        self._materialize()
        return list(self) + list(other)

    def __radd__(self, other):
        self._materialize()
        return list(other) + list(self)

    def __mul__(self, factor):
        self._materialize()
        return list.__mul__(self, factor)

    __rmul__ = __mul__

    # -- mutations force -------------------------------------------------

    def append(self, item):
        self._materialize()
        super().append(item)

    def extend(self, items):
        self._materialize()
        super().extend(items)

    def insert(self, position, item):
        self._materialize()
        super().insert(position, item)

    def remove(self, item):
        self._materialize()
        super().remove(item)

    def pop(self, *args):
        self._materialize()
        return super().pop(*args)

    def clear(self):
        self._materialize()
        super().clear()

    def sort(self, **kwargs):
        self._materialize()
        super().sort(**kwargs)

    def reverse(self):
        self._materialize()
        super().reverse()

    def __setitem__(self, key, value):
        self._materialize()
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._materialize()
        super().__delitem__(key)

    def __iadd__(self, other):
        self._materialize()
        super().extend(other)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._state is not None:
            return f"<{type(self).__name__} unforced, len={self._length}>"
        return list.__repr__(self)


class LazyDocuments(_LazyList):
    """The service's ``documents`` list, decoded on first touch."""

    _SLOT = 0

    def __init__(self, state: LazyForestState) -> None:
        super().__init__(state, state.expected_documents)


class LazyElements(_LazyList):
    """The tree's pre-order ``elements`` list, decoded on first touch."""

    _SLOT = 1

    def __init__(self, state: LazyForestState) -> None:
        super().__init__(state, state.expected_elements)
