"""The page file: an mmap-served container of immutable numpy segments.

Checkpoints and summary stores used to be ``.npz`` archives: every load
decompressed every member into private heap memory, so warm start paid
a full deserialize and peak RSS tracked the dataset.  A page file keeps
the same "named array members" model but stores each segment as its raw
little-endian bytes, 64-byte aligned, so a reader can ``mmap`` the file
once and hand out **zero-copy read-only array views** backed by the OS
page cache -- shared across processes (sharded-build workers, replicas)
and faulted in lazily.

Layout (all integers little-endian)::

    offset 0    8-byte magic  b"RPPGF1\\0\\n"
    ...         segments: raw C-contiguous array bytes, each starting
                on a 64-byte boundary (zero padding between)
    ...         footer: JSON directory
                {"format", "version", "meta": {...},
                 "segments": {name: {"offset", "nbytes", "dtype",
                                     "shape", "crc32"}}}
    tail -16    <u32 footer length> <u32 crc32(footer)>
    tail -8     8-byte magic again (truncation tripwire)

The file is **append-only in spirit**: segments are immutable once
written, the footer directory is the single point of truth, and a
writer produces the whole file tmp+rename-atomically (the durability
choreography -- fsync ordering, fault injection points -- stays with
the caller, see ``repro.service.wal``).  Every segment carries a CRC32
checked on first access, so a bit-flip is detected at read time exactly
like a corrupt ``.npz`` member; the footer carries its own CRC so a
truncated or overwritten tail is rejected before any segment is
trusted.

:class:`PageFile` duck-types the two ``NpzFile`` affordances the
summary/checkpoint loaders use (``.files`` and ``__getitem__``), so
one loading path serves both containers.  Open readers register in a
module-level table: :func:`mapped_paths` is how checkpoint retention
refuses to unlink a file that a live snapshot or lazy-loaded service
still maps.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import weakref
import zlib
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

import numpy as np

PAGEFILE_MAGIC = b"RPPGF1\x00\n"
PAGEFILE_FORMAT = "repro-pagefile"
PAGEFILE_VERSION = 1
#: Segment alignment: every segment starts on a 64-byte boundary, so an
#: int64/float64 view is always itemsize-aligned (and cache-line
#: aligned) no matter what preceded it.
SEGMENT_ALIGN = 64
_TAIL = struct.Struct("<II")  # footer length, crc32(footer)
#: magic + footer + tail struct + trailing magic
_MIN_SIZE = len(PAGEFILE_MAGIC) + _TAIL.size + len(PAGEFILE_MAGIC)


class PageFormatError(ValueError):
    """The file is not a readable page file (foreign, truncated, or
    corrupt).  A ``ValueError`` subtype so the summary/checkpoint
    loaders' malformed-member nets catch it like any other bad store."""


# -- writing -----------------------------------------------------------------


def encode_page_file(
    arrays: Mapping[str, np.ndarray], meta: Optional[dict] = None
) -> bytes:
    """Serialise named arrays into page-file bytes (pure function).

    Segments are laid out in iteration order, each zero-padded to a
    64-byte boundary and CRC32'd.  Durability (tmp files, fsync,
    rename) is the caller's business -- this only defines the bytes.
    """
    chunks: list[bytes] = [PAGEFILE_MAGIC]
    offset = len(PAGEFILE_MAGIC)
    segments: dict[str, dict] = {}
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        raw = array.tobytes()
        pad = (-offset) % SEGMENT_ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        segments[str(name)] = {
            "offset": offset,
            "nbytes": len(raw),
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "crc32": zlib.crc32(raw),
        }
        chunks.append(raw)
        offset += len(raw)
    footer = json.dumps(
        {
            "format": PAGEFILE_FORMAT,
            "version": PAGEFILE_VERSION,
            "meta": meta or {},
            "segments": segments,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    chunks.append(footer)
    chunks.append(_TAIL.pack(len(footer), zlib.crc32(footer)))
    chunks.append(PAGEFILE_MAGIC)
    return b"".join(chunks)


def write_page_file(
    path: Union[str, Path],
    arrays: Mapping[str, np.ndarray],
    meta: Optional[dict] = None,
) -> int:
    """Write a page file atomically (tmp + rename); returns its size.

    Plain convenience for stores outside the checkpoint lifecycle
    (benchmarks, the binary summary store); checkpoint writes go
    through ``repro.service.wal`` which owns fsync ordering and fault
    injection around the same :func:`encode_page_file` bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = encode_page_file(arrays, meta)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(data)


# -- reading -----------------------------------------------------------------

#: Live readers, for mapping-aware retention.  Weak so an abandoned
#: reader does not pin its file forever; anything that serves arrays
#: out of a mapping (a lazy service, a histogram page's ``backing``)
#: holds its :class:`PageFile` strongly, which is what keeps the entry
#: alive exactly as long as the mapping is actually reachable.
_LIVE: "weakref.WeakSet[PageFile]" = weakref.WeakSet()
_LIVE_LOCK = threading.Lock()


def mapped_paths() -> set[Path]:
    """Resolved paths of every page file currently mapped by a live
    reader in this process.  Checkpoint retention consults this before
    unlinking: a mapped file is deferred, never deleted out from under
    a snapshot."""
    with _LIVE_LOCK:
        return {pf.path for pf in _LIVE if not pf.closed}


def is_page_file(path: Union[str, Path]) -> bool:
    """Magic sniff: does ``path`` start with the page-file magic?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(PAGEFILE_MAGIC)) == PAGEFILE_MAGIC
    except OSError:
        return False


def open_array_container(path: Union[str, Path]):
    """Open a named-array container by content, not extension.

    Returns an ``NpzFile`` for zip-magic files and a :class:`PageFile`
    for page-file magic -- both answer ``.files`` / ``__getitem__`` /
    ``close()`` / context-manager, so loaders stay container-agnostic
    and legacy ``.npz`` checkpoints keep loading transparently.
    Anything else raises :class:`PageFormatError`.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        head = handle.read(len(PAGEFILE_MAGIC))
    if head[:2] == b"PK":
        return np.load(path)
    if head == PAGEFILE_MAGIC:
        return PageFile(path)
    raise PageFormatError(f"{path} is neither a page file nor an npz archive")


class PageFile:
    """Memory-mapped reader for one page file.

    Segments come back as read-only ndarray views into the mapping --
    zero copies, faulted in by the OS on first touch, shared across
    every process that maps the same file.  Each segment's CRC is
    verified once, on first access (reading a segment is what faults
    its pages in anyway, so verification adds no extra I/O pattern).

    ``close()`` is safe while views are still alive: the underlying
    ``mmap`` refuses to unmap exported buffers, in which case the
    reader stays open (and stays visible to :func:`mapped_paths`) until
    the last view is garbage collected.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path).resolve()
        self._verified: set[str] = set()
        self._mm: Optional[mmap.mmap] = None
        fh = open(self.path, "rb")
        try:
            try:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError) as exc:  # empty / unmappable
                raise PageFormatError(
                    f"{self.path} cannot be mapped as a page file: {exc}"
                ) from exc
        finally:
            # The mapping holds its own reference to the file.
            fh.close()
        try:
            self._parse_footer(mm)
        except PageFormatError:
            mm.close()
            raise
        self._mm = mm
        self._buf = memoryview(mm)
        with _LIVE_LOCK:
            _LIVE.add(self)

    def _parse_footer(self, mm: mmap.mmap) -> None:
        total = len(mm)
        magic = len(PAGEFILE_MAGIC)
        if total < _MIN_SIZE:
            raise PageFormatError(f"{self.path} is truncated ({total} bytes)")
        if mm[:magic] != PAGEFILE_MAGIC:
            raise PageFormatError(f"{self.path} has no page-file magic")
        if mm[total - magic :] != PAGEFILE_MAGIC:
            raise PageFormatError(
                f"{self.path} lost its trailing magic (truncated write?)"
            )
        footer_len, footer_crc = _TAIL.unpack(
            mm[total - magic - _TAIL.size : total - magic]
        )
        footer_start = total - magic - _TAIL.size - footer_len
        if footer_start < magic:
            raise PageFormatError(f"{self.path} footer overruns the file")
        footer_bytes = mm[footer_start:footer_start + footer_len]
        if zlib.crc32(footer_bytes) != footer_crc:
            raise PageFormatError(f"{self.path} footer failed its checksum")
        try:
            footer = json.loads(footer_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PageFormatError(
                f"{self.path} footer is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(footer, dict)
            or footer.get("format") != PAGEFILE_FORMAT
            or not isinstance(footer.get("segments"), dict)
        ):
            raise PageFormatError(f"{self.path} is not a {PAGEFILE_FORMAT} file")
        if footer.get("version") != PAGEFILE_VERSION:
            raise PageFormatError(
                f"{self.path} is page-file version {footer.get('version')}; "
                f"this build reads version {PAGEFILE_VERSION}"
            )
        self.meta: dict = footer.get("meta") or {}
        self._segments: dict[str, dict] = footer["segments"]
        self._data_end = footer_start

    # -- NpzFile-compatible surface --------------------------------------

    @property
    def files(self) -> list[str]:
        return list(self._segments)

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def __getitem__(self, name: str) -> np.ndarray:
        if self._mm is None:
            raise PageFormatError(f"{self.path} page file is closed")
        info = self._segments[name]  # KeyError propagates, as NpzFile does
        try:
            offset = int(info["offset"])
            nbytes = int(info["nbytes"])
            dtype = np.dtype(str(info["dtype"]))
            shape = tuple(int(n) for n in info["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PageFormatError(
                f"{self.path} segment {name!r} has a malformed directory "
                f"entry: {exc}"
            ) from exc
        if offset < 0 or offset % SEGMENT_ALIGN or offset + nbytes > self._data_end:
            raise PageFormatError(
                f"{self.path} segment {name!r} lies outside the data region"
            )
        raw = self._buf[offset:offset + nbytes]
        if name not in self._verified:
            if zlib.crc32(raw) != int(info["crc32"]):
                raise PageFormatError(
                    f"{self.path} segment {name!r} failed its checksum"
                )
            self._verified.add(name)
        try:
            return np.frombuffer(raw, dtype=dtype).reshape(shape)
        except ValueError as exc:
            raise PageFormatError(
                f"{self.path} segment {name!r} does not decode as "
                f"{dtype}{shape}: {exc}"
            ) from exc

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._mm is None

    def nbytes(self) -> int:
        """Mapped file size."""
        return 0 if self._mm is None else len(self._mm)

    def segment_names(self) -> Iterable[str]:
        return self._segments.keys()

    def close(self) -> None:
        """Unmap, unless live array views still export the buffer -- in
        which case the mapping (and the retention entry) stays until
        the views are collected.  Idempotent."""
        if self._mm is None:
            return
        buf, self._buf = self._buf, None
        if buf is not None:
            buf.release()
        try:
            self._mm.close()
        except BufferError:
            self._buf = memoryview(self._mm)
            return
        self._mm = None
        with _LIVE_LOCK:
            _LIVE.discard(self)

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"{len(self._segments)} segments"
        return f"PageFile({str(self.path)!r}, {state})"
