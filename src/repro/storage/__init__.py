"""Out-of-core storage: the memory-mapped page-file container.

:mod:`repro.storage.pagefile` defines the append-only, checksummed,
64-byte-aligned container of immutable numpy segments that checkpoints
and summary stores are written into, plus the mmap-backed reader that
serves those segments as zero-copy read-only arrays.
"""

from repro.storage.pagefile import (
    PAGEFILE_MAGIC,
    PageFile,
    PageFormatError,
    encode_page_file,
    is_page_file,
    mapped_paths,
    open_array_container,
    write_page_file,
)

__all__ = [
    "PAGEFILE_MAGIC",
    "PageFile",
    "PageFormatError",
    "encode_page_file",
    "is_page_file",
    "mapped_paths",
    "open_array_container",
    "write_page_file",
]
