"""Plain-text rendering of position histograms (the paper's Fig. 7 view).

Grid cells are drawn with start buckets as columns and end buckets as
rows, highest end bucket on top (matching the paper's figures, where
the populated triangle sits upper-left).  Useful in examples, teaching
material, and debugging sessions.
"""

from __future__ import annotations

from repro.histograms.coverage import CoverageHistogram
from repro.histograms.position import PositionHistogram


def render_position_histogram(histogram: PositionHistogram) -> str:
    """Draw a position histogram as a text grid.

    Empty-but-possible cells show ``.``, impossible (below-diagonal)
    cells are blank, and counts print in the cell.
    """
    size = histogram.grid.size
    width = max(
        [len(_fmt(count)) for _cell, count in histogram.cells()] + [1]
    )
    lines: list[str] = []
    title = histogram.name or "position histogram"
    lines.append(f"{title} (g={size}, total={histogram.total():g})")
    for j in range(size - 1, -1, -1):
        cells = []
        for i in range(size):
            if j < i:
                cells.append(" " * width)
            else:
                count = histogram.count(i, j)
                cells.append((_fmt(count) if count else ".").rjust(width))
        lines.append(f"end {j:>2} | " + " ".join(cells))
    lines.append(" " * 8 + " ".join(f"{i:>{width}}" for i in range(size)))
    lines.append(" " * 8 + "start bucket".center((width + 1) * size))
    return "\n".join(lines)


def render_coverage_histogram(coverage: CoverageHistogram, max_rows: int = 40) -> str:
    """List coverage entries: covered cell <- covering cell: fraction."""
    lines = [f"{coverage.name or 'coverage histogram'} (g={coverage.grid.size})"]
    for row, ((i, j, m, n), fraction) in enumerate(coverage.entries()):
        if row >= max_rows:
            lines.append(f"  ... {coverage.entry_count() - max_rows} more entries")
            break
        lines.append(f"  cell ({i},{j}) <- ancestors in ({m},{n}): {fraction:.3f}")
    if coverage.entry_count() == 0:
        lines.append("  (empty)")
    return "\n".join(lines)


def _fmt(count: float) -> str:
    if count == int(count):
        return str(int(count))
    return f"{count:.2g}"
