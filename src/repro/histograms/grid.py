"""Grid geometry for position histograms.

A :class:`GridSpec` partitions the label space ``[0, max_label]`` into
``g`` buckets per axis -- equi-width by default, or along explicit
shared ``boundaries`` (the paper's future-work "histograms with
non-uniform grid cells"; see :func:`equi_depth_grid` in
:mod:`repro.histograms.adaptive`).  Start positions index the X axis
and end positions the Y axis, exactly as in the paper's Figs. 3-5.
Because ``start < end`` for every node, only cells ``(i, j)`` with
``j >= i`` can be populated; both axes share one set of boundaries, so
the diagonal keeps its meaning under non-uniform bucketing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class GridSpec:
    """A ``g x g`` grid over label positions.

    Attributes
    ----------
    size:
        The grid side ``g`` (the paper uses 10x10 by default).
    max_label:
        The largest label value in the database; positions lie in
        ``[0, max_label]``.
    boundaries:
        Optional non-uniform bucket boundaries: a strictly increasing
        tuple of ``size + 1`` values with ``boundaries[0] <= 0`` and
        ``boundaries[-1] > max_label``.  Bucket ``i`` covers
        ``[boundaries[i], boundaries[i+1])``.  ``None`` (default) means
        equi-width buckets.
    """

    size: int
    max_label: int
    boundaries: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"grid size must be >= 1, got {self.size}")
        if self.max_label < 0:
            raise ValueError(f"max_label must be >= 0, got {self.max_label}")
        if self.boundaries is not None:
            bounds = self.boundaries
            if len(bounds) != self.size + 1:
                raise ValueError(
                    f"need {self.size + 1} boundaries, got {len(bounds)}"
                )
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise ValueError("boundaries must be strictly increasing")
            if bounds[0] > 0 or bounds[-1] <= self.max_label:
                raise ValueError(
                    f"boundaries must cover [0, {self.max_label}]"
                )

    @property
    def span(self) -> float:
        """Width of one equi-width bucket (may be fractional).

        Undefined for non-uniform grids; use :meth:`bucket_bounds`.
        """
        if self.boundaries is not None:
            raise ValueError("span is undefined for non-uniform grids")
        return (self.max_label + 1) / self.size

    def bucket(self, position: int) -> int:
        """Bucket index of a single label position."""
        if position < 0 or position > self.max_label:
            raise ValueError(
                f"position {position} outside [0, {self.max_label}]"
            )
        if self.boundaries is not None:
            import bisect

            return min(
                self.size - 1, bisect.bisect_right(self.boundaries, position) - 1
            )
        return min(self.size - 1, int(position * self.size // (self.max_label + 1)))

    def buckets(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bucket` over an int array."""
        if self.boundaries is not None:
            idx = np.searchsorted(
                np.asarray(self.boundaries), positions, side="right"
            ) - 1
            return np.clip(idx, 0, self.size - 1)
        idx = (positions.astype(np.int64) * self.size) // (self.max_label + 1)
        return np.minimum(idx, self.size - 1)

    def cell_of(self, start: int, end: int) -> tuple[int, int]:
        """Grid cell ``(i, j)`` of a node with the given interval."""
        return self.bucket(start), self.bucket(end)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """Half-open position range ``[lo, hi)`` covered by bucket ``index``."""
        if not 0 <= index < self.size:
            raise ValueError(f"bucket {index} outside [0, {self.size})")
        if self.boundaries is not None:
            return self.boundaries[index], self.boundaries[index + 1]
        return index * self.span, (index + 1) * self.span

    def is_on_diagonal(self, i: int, j: int) -> bool:
        """Definition 1 of the paper: the start-interval of column ``i``
        and the end-interval of row ``j`` intersect.

        With equi-width buckets on a shared axis this is simply
        ``i == j``.
        """
        return i == j

    def iter_upper_cells(self) -> Iterator[tuple[int, int]]:
        """Yield all cells ``(i, j)`` with ``j >= i`` (the populated
        upper triangle), row-major."""
        for i in range(self.size):
            for j in range(i, self.size):
                yield (i, j)

    def compatible_with(self, other: "GridSpec") -> bool:
        """Histograms can only be joined when built over the same grid."""
        return (
            self.size == other.size
            and self.max_label == other.max_label
            and self.boundaries == other.boundaries
        )
