"""Level-augmented position histograms (paper future-work extension).

The paper's conclusion defers "estimation for queries with ...
parent-child relationship" to the tech report.  The natural summary
extension is to split each position-histogram cell by node *level*
(root = 1): a parent-child pair is an ancestor-descendant pair whose
levels differ by exactly one, so the pH-join region weights apply
per-level with the descendant restricted to ``level + 1``.

Storage stays modest: real XML has few distinct levels (DBLP: 3,
orgchart: ~15), so the structure is a small stack of sparse position
histograms.  :class:`LevelPositionHistogram` also improves plain
ancestor-descendant estimates (descendants must sit at a strictly
greater level), which the ablation bench quantifies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.histograms.grid import GridSpec
from repro.labeling.interval import LabeledTree


class LevelPositionHistogram:
    """Per-level sparse position histogram: ``(i, j, level) -> count``.

    The marginal over levels equals the plain
    :class:`~repro.histograms.position.PositionHistogram` of the same
    predicate, which :meth:`marginal` materialises (and tests verify).
    """

    def __init__(
        self,
        grid: GridSpec,
        cells: Optional[Mapping[tuple[int, int, int], float]] = None,
        name: str = "",
    ) -> None:
        self.grid = grid
        self.name = name
        self._cells: dict[tuple[int, int, int], float] = {}
        if cells:
            for key, count in cells.items():
                self._set(key, float(count))

    def _set(self, key: tuple[int, int, int], count: float) -> None:
        i, j, level = key
        if not (0 <= i < self.grid.size and 0 <= j < self.grid.size):
            raise ValueError(f"cell ({i}, {j}) outside the grid")
        if j < i:
            raise ValueError(f"cell ({i}, {j}) below the diagonal")
        if level < 1:
            raise ValueError(f"level must be >= 1, got {level}")
        if count < 0:
            raise ValueError(f"negative count {count}")
        if count == 0:
            self._cells.pop(key, None)
        else:
            self._cells[key] = count

    # -- access ------------------------------------------------------------

    def count(self, i: int, j: int, level: int) -> float:
        return self._cells.get((i, j, level), 0.0)

    def cells(self) -> Iterator[tuple[tuple[int, int, int], float]]:
        for key in sorted(self._cells):
            yield key, self._cells[key]

    def levels(self) -> list[int]:
        """Distinct populated levels, ascending."""
        return sorted({level for (_i, _j, level) in self._cells})

    def total(self) -> float:
        return float(sum(self._cells.values()))

    def nonzero_cell_count(self) -> int:
        return len(self._cells)

    def dense_level(self, level: int) -> np.ndarray:
        """Dense ``g x g`` matrix of one level's counts."""
        matrix = np.zeros((self.grid.size, self.grid.size))
        for (i, j, cell_level), count in self._cells.items():
            if cell_level == level:
                matrix[i, j] = count
        return matrix

    def dense_levels_at_least(self, level: int) -> np.ndarray:
        """Dense matrix of counts at ``level`` or deeper."""
        matrix = np.zeros((self.grid.size, self.grid.size))
        for (i, j, cell_level), count in self._cells.items():
            if cell_level >= level:
                matrix[i, j] += count
        return matrix

    def marginal(self):
        """The plain position histogram obtained by summing out levels."""
        from repro.histograms.position import PositionHistogram

        cells: dict[tuple[int, int], float] = {}
        for (i, j, _level), count in self._cells.items():
            cells[(i, j)] = cells.get((i, j), 0.0) + count
        return PositionHistogram(self.grid, cells, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LevelPositionHistogram({self.name or '?'}, g={self.grid.size}, "
            f"levels={self.levels()}, cells={len(self._cells)})"
        )


def build_level_histogram(
    tree: LabeledTree,
    node_indices: Iterable[int],
    grid: GridSpec,
    name: str = "",
) -> LevelPositionHistogram:
    """Build the level-augmented histogram of the given nodes."""
    idx = np.asarray(list(node_indices), dtype=np.int64)
    histogram = LevelPositionHistogram(grid, name=name)
    if len(idx) == 0:
        return histogram
    cols = grid.buckets(tree.start[idx])
    rows = grid.buckets(tree.end[idx])
    levels = tree.level[idx]
    for i, j, level in zip(cols.tolist(), rows.tolist(), levels.tolist()):
        key = (int(i), int(j), int(level))
        histogram._set(key, histogram.count(*key) + 1.0)
    return histogram
