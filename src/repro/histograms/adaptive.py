"""Non-uniform (equi-depth) grids -- the paper's future-work item.

The paper's conclusion lists "estimation using histogram with
non-uniform grid cells" as an open issue.  With interval labels the
natural choice is a shared set of boundaries on both axes (so the
diagonal keeps its on/off semantics), placed at quantiles of the label
distribution: busy regions of the document get finer cells, empty
regions coarser ones.

:func:`equi_depth_grid` computes such boundaries from the combined
start/end label population of the whole database; the estimators work
unchanged because they only ever reason about cell indices and the
in-cell uniformity assumption.
"""

from __future__ import annotations

import numpy as np

from repro.histograms.grid import GridSpec
from repro.labeling.interval import LabeledTree


def equi_depth_boundaries(positions: np.ndarray, size: int, max_label: int) -> tuple[float, ...]:
    """Quantile boundaries over a label population.

    Returns ``size + 1`` strictly increasing values starting at 0 and
    ending just past ``max_label``.  Duplicate quantiles (heavy ties)
    are resolved by nudging, falling back toward equi-width in the
    degenerate tail.
    """
    if size < 1:
        raise ValueError(f"grid size must be >= 1, got {size}")
    quantiles = np.quantile(
        np.asarray(positions, dtype=np.float64), np.linspace(0.0, 1.0, size + 1)
    )
    bounds = [0.0]
    for q in quantiles[1:-1]:
        candidate = float(q)
        if candidate <= bounds[-1]:
            candidate = bounds[-1] + 1.0
        bounds.append(candidate)
    top = float(max_label) + 1.0
    if bounds[-1] >= top:
        # Degenerate tail: re-space the offending prefix evenly.
        bounds = [0.0] + [top * (k + 1) / size for k in range(size - 1)]
    bounds.append(top)
    # Final safety: enforce strict monotonicity.
    for k in range(1, len(bounds)):
        if bounds[k] <= bounds[k - 1]:
            bounds[k] = bounds[k - 1] + 1e-9
    return tuple(bounds)


def equi_depth_grid(tree: LabeledTree, size: int) -> GridSpec:
    """An equi-depth :class:`GridSpec` for a labeled database tree.

    Boundaries are placed at quantiles of the combined start and end
    label population, so each axis bucket holds roughly the same number
    of node endpoints.
    """
    positions = np.concatenate([tree.start, tree.end])
    boundaries = equi_depth_boundaries(positions, size, tree.max_label)
    return GridSpec(size=size, max_label=tree.max_label, boundaries=boundaries)
