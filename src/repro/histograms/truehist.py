"""The TRUE histogram and compound-predicate histogram algebra.

Paper Section 3.4: when a query predicate is a boolean combination of
basic predicates, its position histogram can be *synthesised* from the
component histograms, assuming independence between the components
within each grid cell.  Counts are converted to probabilities by
normalising with the TRUE histogram (the position histogram of the
predicate satisfied by every node), combined, and converted back:

* AND:  ``p = (a / t) * (b / t)``, count ``p * t  =  a * b / t``
* OR:   ``a + b - a * b / t`` (inclusion-exclusion)
* NOT:  ``t - a``

Disjoint OR (e.g. the paper's decade predicates, unions of distinct
years) reduces to plain cell-wise addition; :func:`or_histograms` takes
a ``disjoint`` flag for that case.

The algebra runs columnar over the histograms' frozen page arrays
(:meth:`~repro.histograms.position.PositionHistogram.cell_arrays`):
each operation is a vectorised expression over aligned cell-code
arrays, producing the same per-cell floats the scalar formulas yield
(every cell is independent, so vectorisation cannot reorder any
addition that matters).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate, TruePredicate
from repro.predicates.boolean import AndPredicate, NotPredicate, OrPredicate


def build_true_histogram(tree: LabeledTree, grid: GridSpec) -> PositionHistogram:
    """Position histogram of every element in the database."""
    return build_position_histogram(
        tree, range(len(tree)), grid, name=TruePredicate().name
    )


def _require_same_grid(*histograms: PositionHistogram) -> GridSpec:
    grid = histograms[0].grid
    for h in histograms[1:]:
        if not grid.compatible_with(h.grid):
            raise ValueError("histograms were built over different grids")
    return grid


def _from_code_arrays(
    grid: GridSpec, codes: np.ndarray, counts: np.ndarray, name: str
) -> PositionHistogram:
    """Histogram from sorted code/count arrays (zero cells dropped)."""
    keep = counts != 0.0
    histogram = PositionHistogram(grid, name=name)
    histogram._install_page(codes[keep], counts[keep])
    return histogram


def _lookup(histogram: PositionHistogram, codes: np.ndarray) -> np.ndarray:
    """Counts of ``histogram`` at the given cell codes (0.0 elsewhere)."""
    return histogram.dense().reshape(-1)[codes]


def _union_add(
    codes_a: np.ndarray,
    counts_a: np.ndarray,
    codes_b: np.ndarray,
    counts_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Cell-wise ``a + b`` over two sorted sparse cell arrays."""
    codes = np.union1d(codes_a, codes_b)
    counts = np.zeros(len(codes), dtype=np.float64)
    counts[np.searchsorted(codes, codes_a)] += counts_a
    counts[np.searchsorted(codes, codes_b)] += counts_b
    return codes, counts


def and_histograms(
    a: PositionHistogram,
    b: PositionHistogram,
    true_hist: PositionHistogram,
    name: str = "",
) -> PositionHistogram:
    """Synthesise the histogram of ``A AND B`` under in-cell independence."""
    grid = _require_same_grid(a, b, true_hist)
    codes_a, counts_a = a.cell_arrays()
    counts_b = _lookup(b, codes_a)
    totals = _lookup(true_hist, codes_a)
    mask = (counts_b > 0) & (totals > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(mask, counts_a * counts_b / np.where(mask, totals, 1.0), 0.0)
    return _from_code_arrays(grid, codes_a[mask], values[mask], name)


def or_histograms(
    a: PositionHistogram,
    b: PositionHistogram,
    true_hist: PositionHistogram,
    disjoint: bool = False,
    name: str = "",
) -> PositionHistogram:
    """Synthesise the histogram of ``A OR B``.

    With ``disjoint=True`` (predicates that cannot both hold, like
    distinct years) this is exact cell-wise addition -- how the paper
    builds its "1990's" compound predicate by "adding up 10
    corresponding primitive histograms".
    """
    grid = _require_same_grid(a, b, true_hist)
    codes, counts = _union_add(*a.cell_arrays(), *b.cell_arrays())
    if not disjoint:
        overlap = and_histograms(a, b, true_hist)
        codes_o, counts_o = overlap.cell_arrays()
        # Overlap cells are a subset of a's cells, hence of the union.
        counts[np.searchsorted(codes, codes_o)] -= counts_o
        keep = counts > 0
        codes, counts = codes[keep], counts[keep]
    return _from_code_arrays(grid, codes, counts, name)


def sum_histograms(
    histograms: Iterable[PositionHistogram], name: str = ""
) -> PositionHistogram:
    """Cell-wise sum of disjoint-predicate histograms (decade compounds)."""
    histograms = list(histograms)
    if not histograms:
        raise ValueError("need at least one histogram")
    grid = _require_same_grid(*histograms)
    codes, counts = histograms[0].cell_arrays()
    for histogram in histograms[1:]:
        codes, counts = _union_add(codes, counts, *histogram.cell_arrays())
    return _from_code_arrays(grid, codes, counts, name)


def not_histogram(
    a: PositionHistogram, true_hist: PositionHistogram, name: str = ""
) -> PositionHistogram:
    """Synthesise the histogram of ``NOT A`` as ``TRUE - A`` cell-wise."""
    grid = _require_same_grid(a, true_hist)
    codes_t, counts_t = true_hist.cell_arrays()
    remaining = counts_t - _lookup(a, codes_t)
    keep = remaining > 0
    return _from_code_arrays(grid, codes_t[keep], remaining[keep], name)


def synthesize_histogram(
    predicate: Predicate,
    base_histograms: dict[Predicate, PositionHistogram],
    true_hist: PositionHistogram,
) -> PositionHistogram:
    """Recursively synthesise a compound predicate's histogram.

    ``base_histograms`` maps basic predicates to their (data-built)
    histograms; boolean structure is handled with the cell-wise algebra
    above.  Raises KeyError when a needed basic histogram is missing --
    callers decide whether to fall back to a data scan.
    """
    if predicate in base_histograms:
        return base_histograms[predicate]
    if isinstance(predicate, AndPredicate):
        parts = [
            synthesize_histogram(p, base_histograms, true_hist)
            for p in predicate.parts
        ]
        result = parts[0]
        for part in parts[1:]:
            result = and_histograms(result, part, true_hist)
        return PositionHistogram(result.grid, dict(result.cells()), name=predicate.name)
    if isinstance(predicate, OrPredicate):
        parts = [
            synthesize_histogram(p, base_histograms, true_hist)
            for p in predicate.parts
        ]
        result = parts[0]
        for part in parts[1:]:
            result = or_histograms(result, part, true_hist)
        return PositionHistogram(result.grid, dict(result.cells()), name=predicate.name)
    if isinstance(predicate, NotPredicate):
        inner = synthesize_histogram(predicate.part, base_histograms, true_hist)
        return not_histogram(inner, true_hist, name=predicate.name)
    raise KeyError(f"no base histogram for predicate {predicate.name!r}")


def synthesize_from_tree(
    predicate: Predicate, tree: LabeledTree, grid: GridSpec
) -> PositionHistogram:
    """Exact fallback: scan the data and build the histogram directly."""
    indices = [
        i for i, element in enumerate(tree.elements) if predicate.matches(element)
    ]
    return build_position_histogram(tree, indices, grid, name=predicate.name)
