"""The TRUE histogram and compound-predicate histogram algebra.

Paper Section 3.4: when a query predicate is a boolean combination of
basic predicates, its position histogram can be *synthesised* from the
component histograms, assuming independence between the components
within each grid cell.  Counts are converted to probabilities by
normalising with the TRUE histogram (the position histogram of the
predicate satisfied by every node), combined, and converted back:

* AND:  ``p = (a / t) * (b / t)``, count ``p * t  =  a * b / t``
* OR:   ``a + b - a * b / t`` (inclusion-exclusion)
* NOT:  ``t - a``

Disjoint OR (e.g. the paper's decade predicates, unions of distinct
years) reduces to plain cell-wise addition; :func:`or_histograms` takes
a ``disjoint`` flag for that case.
"""

from __future__ import annotations

from typing import Iterable

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate, TruePredicate
from repro.predicates.boolean import AndPredicate, NotPredicate, OrPredicate


def build_true_histogram(tree: LabeledTree, grid: GridSpec) -> PositionHistogram:
    """Position histogram of every element in the database."""
    return build_position_histogram(
        tree, range(len(tree)), grid, name=TruePredicate().name
    )


def _require_same_grid(*histograms: PositionHistogram) -> GridSpec:
    grid = histograms[0].grid
    for h in histograms[1:]:
        if not grid.compatible_with(h.grid):
            raise ValueError("histograms were built over different grids")
    return grid


def and_histograms(
    a: PositionHistogram,
    b: PositionHistogram,
    true_hist: PositionHistogram,
    name: str = "",
) -> PositionHistogram:
    """Synthesise the histogram of ``A AND B`` under in-cell independence."""
    grid = _require_same_grid(a, b, true_hist)
    cells: dict[tuple[int, int], float] = {}
    for cell, count_a in a.cells():
        count_b = b.count(*cell)
        total = true_hist.count(*cell)
        if count_b > 0 and total > 0:
            cells[cell] = count_a * count_b / total
    return PositionHistogram(grid, cells, name=name)


def or_histograms(
    a: PositionHistogram,
    b: PositionHistogram,
    true_hist: PositionHistogram,
    disjoint: bool = False,
    name: str = "",
) -> PositionHistogram:
    """Synthesise the histogram of ``A OR B``.

    With ``disjoint=True`` (predicates that cannot both hold, like
    distinct years) this is exact cell-wise addition -- how the paper
    builds its "1990's" compound predicate by "adding up 10
    corresponding primitive histograms".
    """
    grid = _require_same_grid(a, b, true_hist)
    cells: dict[tuple[int, int], float] = {}
    for cell, count in a.cells():
        cells[cell] = cells.get(cell, 0.0) + count
    for cell, count in b.cells():
        cells[cell] = cells.get(cell, 0.0) + count
    if not disjoint:
        overlap = and_histograms(a, b, true_hist)
        for cell, count in overlap.cells():
            remaining = cells.get(cell, 0.0) - count
            if remaining <= 0:
                cells.pop(cell, None)
            else:
                cells[cell] = remaining
    return PositionHistogram(grid, cells, name=name)


def sum_histograms(
    histograms: Iterable[PositionHistogram], name: str = ""
) -> PositionHistogram:
    """Cell-wise sum of disjoint-predicate histograms (decade compounds)."""
    histograms = list(histograms)
    if not histograms:
        raise ValueError("need at least one histogram")
    grid = _require_same_grid(*histograms)
    cells: dict[tuple[int, int], float] = {}
    for histogram in histograms:
        for cell, count in histogram.cells():
            cells[cell] = cells.get(cell, 0.0) + count
    return PositionHistogram(grid, cells, name=name)


def not_histogram(
    a: PositionHistogram, true_hist: PositionHistogram, name: str = ""
) -> PositionHistogram:
    """Synthesise the histogram of ``NOT A`` as ``TRUE - A`` cell-wise."""
    grid = _require_same_grid(a, true_hist)
    cells: dict[tuple[int, int], float] = {}
    for cell, total in true_hist.cells():
        remaining = total - a.count(*cell)
        if remaining > 0:
            cells[cell] = remaining
    return PositionHistogram(grid, cells, name=name)


def synthesize_histogram(
    predicate: Predicate,
    base_histograms: dict[Predicate, PositionHistogram],
    true_hist: PositionHistogram,
) -> PositionHistogram:
    """Recursively synthesise a compound predicate's histogram.

    ``base_histograms`` maps basic predicates to their (data-built)
    histograms; boolean structure is handled with the cell-wise algebra
    above.  Raises KeyError when a needed basic histogram is missing --
    callers decide whether to fall back to a data scan.
    """
    if predicate in base_histograms:
        return base_histograms[predicate]
    if isinstance(predicate, AndPredicate):
        parts = [
            synthesize_histogram(p, base_histograms, true_hist)
            for p in predicate.parts
        ]
        result = parts[0]
        for part in parts[1:]:
            result = and_histograms(result, part, true_hist)
        return PositionHistogram(result.grid, dict(result.cells()), name=predicate.name)
    if isinstance(predicate, OrPredicate):
        parts = [
            synthesize_histogram(p, base_histograms, true_hist)
            for p in predicate.parts
        ]
        result = parts[0]
        for part in parts[1:]:
            result = or_histograms(result, part, true_hist)
        return PositionHistogram(result.grid, dict(result.cells()), name=predicate.name)
    if isinstance(predicate, NotPredicate):
        inner = synthesize_histogram(predicate.part, base_histograms, true_hist)
        return not_histogram(inner, true_hist, name=predicate.name)
    raise KeyError(f"no base histogram for predicate {predicate.name!r}")


def synthesize_from_tree(
    predicate: Predicate, tree: LabeledTree, grid: GridSpec
) -> PositionHistogram:
    """Exact fallback: scan the data and build the histogram directly."""
    indices = [
        i for i, element in enumerate(tree.elements) if predicate.matches(element)
    ]
    return build_position_histogram(tree, indices, grid, name=predicate.name)
