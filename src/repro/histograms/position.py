"""Position histograms (paper Section 3.1).

A :class:`PositionHistogram` counts, for each grid cell ``(i, j)``, the
nodes satisfying a predicate whose start position falls in bucket ``i``
and end position in bucket ``j``.  Lemma 1 of the paper implies heavy
structure: all mass lies on or above the diagonal, and a populated cell
forbids population in two rectangular regions, which is why only
``O(g)`` cells are non-zero (Theorem 1).

Storage is **epoch-structured** (see :mod:`repro.histograms.epoch`):

* a frozen :class:`~repro.histograms.epoch.HistogramPage` holds the
  bulk of the cells as read-only sorted numpy arrays;
* a stack of **sealed overlay layers** (immutable small dicts of cell
  deltas) sits on top of the page;
* a single **live overlay** absorbs all mutations
  (:meth:`apply_delta` / :meth:`apply_signed_delta`).

:meth:`seal` moves the live overlay onto the stack in O(1) (an
ownership handoff, no copying); :meth:`snapshot_view` seals and returns
a reader that shares the page and the sealed stack by reference --
construction cost independent of the cell count, which is what makes
service snapshots O(1) per histogram.  When the sealed stack grows past
a threshold the *writer* merges it into a fresh page; pinned readers
keep the old page, which the epoch registry frees once the last reader
drops.  All counts are integer-valued floats on the maintained paths,
so page + delta arithmetic is exact and a maintained histogram stays
bit-identical to one rebuilt from scratch.  ``version`` is a
process-unique epoch id stamped on every content change -- the
incremental checkpointer uses it to detect (and skip re-archiving)
histograms that did not change between checkpoints.

Counts are floats because synthesised histograms for compound
predicates (Section 3.4) are generally fractional; those are built
whole into a page and never delta-mutated.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.histograms.epoch import (
    LAYER_LIMIT,
    MERGE_FLOOR,
    HistogramPage,
    merge_page,
    next_epoch,
)
from repro.histograms.grid import GridSpec
from repro.labeling.interval import LabeledTree


class PositionHistogram:
    """Sparse 2-D histogram over (start-bucket, end-bucket) cells.

    Construct via :func:`build_position_histogram` (from data) or
    :meth:`from_cells` (from explicit counts, e.g. the paper's Fig. 7
    worked example).
    """

    def __init__(self, grid: GridSpec, cells: Optional[Mapping[tuple[int, int], float]] = None,
                 name: str = "") -> None:
        self.grid = grid
        self.name = name
        self._layers: tuple[dict[int, float], ...] = ()
        self._overlay: dict[int, float] = {}
        self._dense: Optional[np.ndarray] = None
        self._merged: Optional[dict[int, float]] = None
        if cells:
            mapping: dict[int, float] = {}
            for (i, j), count in cells.items():
                self._validate_cell(i, j, float(count))
                if count != 0.0:
                    mapping[i * grid.size + j] = float(count)
            self._page = HistogramPage.from_mapping(mapping)
        else:
            self._page = HistogramPage.empty()
        self.version = self._page.epoch

    # -- construction ------------------------------------------------------

    @classmethod
    def from_cells(
        cls,
        grid: GridSpec,
        cells: Mapping[tuple[int, int], float],
        name: str = "",
    ) -> "PositionHistogram":
        """Build from an explicit ``{(i, j): count}`` mapping."""
        return cls(grid, cells, name=name)

    @classmethod
    def from_page_arrays(
        cls,
        grid: GridSpec,
        codes: np.ndarray,
        counts: np.ndarray,
        name: str = "",
        epoch: Optional[int] = None,
        backing: Optional[object] = None,
    ) -> "PositionHistogram":
        """Adopt stored ``(codes, counts)`` page arrays directly.

        This is the checkpoint loader's zero-copy path: the arrays are
        installed as the frozen page without a per-cell dict round trip,
        so mmap-backed segments stay views into the mapping (``backing``
        keeps the owning page file alive).  Validation is the vectorised
        equivalent of :meth:`_validate_cell` plus the page invariants --
        strictly increasing codes, cells on or above the diagonal,
        strictly positive counts (the builders never store zeros) -- so
        a corrupt segment raises instead of poisoning later estimates.
        """
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.float64)
        if codes.shape != counts.shape or codes.ndim != 1:
            raise ValueError("page codes and counts must be aligned 1-D arrays")
        g = grid.size
        if codes.size:
            if (np.diff(codes) <= 0).any():
                raise ValueError(f"page codes for {name!r} are not sorted unique")
            if int(codes[0]) < 0 or int(codes[-1]) >= g * g:
                raise ValueError(f"page codes for {name!r} fall outside the grid")
            if (codes % g < codes // g).any():
                raise ValueError(
                    f"page for {name!r} populates cells below the diagonal"
                )
            if (counts <= 0).any():
                raise ValueError(f"page counts for {name!r} must be positive")
        histogram = cls(grid, name=name)
        histogram._page = HistogramPage(codes, counts, epoch=epoch, backing=backing)
        histogram.version = histogram._page.epoch
        return histogram

    def _validate_cell(self, i: int, j: int, count: float) -> None:
        if not (0 <= i < self.grid.size and 0 <= j < self.grid.size):
            raise ValueError(f"cell ({i}, {j}) outside {self.grid.size}x{self.grid.size} grid")
        if j < i:
            raise ValueError(f"cell ({i}, {j}) below the diagonal cannot be populated")
        if count < 0:
            raise ValueError(f"negative count {count} for cell ({i}, {j})")

    def _install_page(self, codes: np.ndarray, counts: np.ndarray) -> None:
        """Adopt data-built cell arrays as this histogram's page."""
        self._page = HistogramPage(codes, counts)
        self._layers = ()
        self._overlay = {}
        self._dense = None
        self._merged = None
        self.version = self._page.epoch

    # -- epoch lifecycle ---------------------------------------------------

    @property
    def page(self) -> HistogramPage:
        """The current frozen page (excludes overlay deltas)."""
        return self._page

    def seal(self) -> None:
        """Freeze the live overlay onto the sealed stack (O(1)).

        The dict itself joins the stack -- by convention it is never
        written again -- and a fresh empty overlay starts.  Content is
        unchanged, so caches and ``version`` survive.
        """
        if self._overlay:
            self._layers = self._layers + (self._overlay,)
            self._overlay = {}

    def snapshot_view(self) -> "PositionHistogram":
        """An immutable reader sharing this histogram's current epoch.

        Seals the live overlay, then hands out a view referencing the
        same page and sealed layers -- zero per-cell work.  Later
        mutations of the live histogram go to a fresh overlay (and
        eventually a fresh page), so the view's counts never move.
        """
        self.seal()
        view = object.__new__(PositionHistogram)
        view.grid = self.grid
        view.name = self.name
        view._page = self._page
        view._layers = self._layers
        view._overlay = {}
        view._dense = self._dense
        view._merged = self._merged
        view.version = self.version
        return view

    def _maybe_merge(self) -> None:
        """Writer-side compaction of the sealed stack into a new page.

        Never touches the old page -- pinned readers keep it -- and
        never changes an observable count.
        """
        if not self._layers:
            return
        entries = sum(len(layer) for layer in self._layers)
        if len(self._layers) > LAYER_LIMIT or entries > max(
            MERGE_FLOOR, 2 * len(self._page)
        ):
            self._page = merge_page(self._page, self._layers)
            self._layers = ()

    def _bump(self) -> None:
        self.version = next_epoch()
        self._dense = None
        self._merged = None

    # -- access ------------------------------------------------------------

    def _merged_cells(self) -> dict[int, float]:
        """Cached ``{code: count}`` view across page + layers + overlay.

        Built fresh and never mutated afterwards, so snapshot views may
        share the cached dict safely.
        """
        if self._merged is None:
            merged = dict(zip(self._page.codes.tolist(), self._page.counts.tolist()))
            for layer in (*self._layers, self._overlay):
                for code, delta in layer.items():
                    merged[code] = merged.get(code, 0.0) + delta
            self._merged = {
                code: count for code, count in merged.items() if count != 0.0
            }
        return self._merged

    def count(self, i: int, j: int) -> float:
        """Count in cell ``(i, j)`` (0.0 if empty)."""
        code = i * self.grid.size + j
        if self._merged is not None:
            return self._merged.get(code, 0.0)
        value = self._page.get(code)
        for layer in (*self._layers, self._overlay):
            value += layer.get(code, 0.0)
        return value

    def cells(self) -> Iterator[tuple[tuple[int, int], float]]:
        """Yield ``((i, j), count)`` for non-zero cells, sorted."""
        merged = self._merged_cells()
        size = self.grid.size
        for code in sorted(merged):
            yield divmod(code, size), merged[code]

    def cell_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The non-zero cells as ``(codes, counts)`` sorted arrays."""
        if not self._layers and not self._overlay:
            return self._page.codes, self._page.counts
        merged = self._merged_cells()
        codes = np.asarray(sorted(merged), dtype=np.int64)
        return codes, np.asarray([merged[c] for c in codes.tolist()], dtype=np.float64)

    def nonzero_cell_count(self) -> int:
        """Number of non-zero cells (the Theorem 1 quantity)."""
        return len(self._merged_cells())

    def total(self) -> float:
        """Total mass -- for data-built histograms, the node count."""
        merged = self._merged_cells()
        return float(sum(merged[code] for code in sorted(merged)))

    def dense(self) -> np.ndarray:
        """Dense ``g x g`` float64 matrix (cached, read-only).

        The returned array is the shared cache with the write flag
        cleared, so accidental mutation raises instead of silently
        corrupting every later estimate; callers that need a scratch
        copy must ``.copy()`` explicitly.
        """
        if self._dense is None:
            matrix = np.zeros((self.grid.size, self.grid.size), dtype=np.float64)
            flat = matrix.reshape(-1)
            flat[self._page.codes] = self._page.counts
            for layer in (*self._layers, self._overlay):
                for code, delta in layer.items():
                    flat[code] += delta
            matrix.setflags(write=False)
            self._dense = matrix
        return self._dense

    def apply_delta(self, cols: np.ndarray, rows: np.ndarray, sign: int = 1) -> None:
        """Add (``sign=+1``) or remove (``sign=-1``) one node per
        ``(cols[k], rows[k])`` cell -- the incremental-maintenance hook.

        Counts are integer-valued floats, so additions and removals are
        exact and a maintained histogram stays bit-identical to one
        rebuilt from scratch over the same nodes.  Cells that reach zero
        are dropped, exactly as the from-scratch builder never creates
        them; a removal that would drive a cell negative raises, because
        it means the delta does not describe nodes actually counted.
        Deltas land in the live overlay only -- sealed layers and the
        page (and therefore every pinned snapshot) are untouched.
        """
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if len(cols) == 0:
            return
        self._maybe_merge()
        keys, counts = np.unique(
            np.asarray(cols, dtype=np.int64) * self.grid.size
            + np.asarray(rows, dtype=np.int64),
            return_counts=True,
        )
        overlay = self._overlay
        for key, count in zip(keys.tolist(), counts.tolist()):
            i, j = divmod(key, self.grid.size)
            current = self.count(i, j)
            if current + sign * count < 0:
                raise ValueError(
                    f"delta would drive cell ({i}, {j}) below zero "
                    f"({current} - {count})"
                )
            overlay[key] = overlay.get(key, 0.0) + float(sign * count)
        self._bump()

    def apply_signed_delta(
        self, cols: np.ndarray, rows: np.ndarray, signs: np.ndarray
    ) -> None:
        """Apply per-node signed deltas in one accumulation pass.

        ``signs[k]`` is ``+1`` to count the node at cell
        ``(cols[k], rows[k])`` or ``-1`` to remove it.  This is the
        batch-maintenance hook: a whole update batch flushes into the
        histogram with a single ``np.add.at``-style accumulation instead
        of one Python pass per update, and inserts cancel deletes of the
        same cell before any cell is touched.  Semantics otherwise match
        :meth:`apply_delta` (exact integer counts, zero cells dropped,
        underflow raises).
        """
        cols = np.asarray(cols, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int64)
        if not (len(cols) == len(rows) == len(signs)):
            raise ValueError("cols, rows, and signs must be aligned")
        if len(cols) == 0:
            return
        self._maybe_merge()
        keys = cols * self.grid.size + rows
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(len(unique), dtype=np.int64)
        np.add.at(sums, inverse, signs)
        overlay = self._overlay
        touched = False
        for key, delta in zip(unique.tolist(), sums.tolist()):
            if delta == 0:
                continue
            i, j = divmod(key, self.grid.size)
            current = self.count(i, j)
            if current + delta < 0:
                raise ValueError(
                    f"delta would drive cell ({i}, {j}) below zero "
                    f"({current} {delta:+d})"
                )
            overlay[key] = overlay.get(key, 0.0) + float(delta)
            touched = True
        if touched:
            self._bump()

    def copy(self) -> "PositionHistogram":
        """An independent value copy sharing the frozen epoch state.

        O(1): the page and sealed layers are immutable and shared; only
        future mutations of either side diverge (each writes its own
        live overlay).  This is what snapshot isolation rides on.
        """
        return self.snapshot_view()

    def scaled(self, factor: float, name: str = "") -> "PositionHistogram":
        """A copy with every cell multiplied by ``factor``."""
        size = self.grid.size
        return PositionHistogram(
            self.grid,
            {
                divmod(code, size): count * factor
                for code, count in self._merged_cells().items()
            },
            name=name or self.name,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PositionHistogram):
            return NotImplemented
        return self.grid == other.grid and self._merged_cells() == other._merged_cells()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PositionHistogram({self.name or '?'}, g={self.grid.size}, "
            f"cells={self.nonzero_cell_count()}, total={self.total():g})"
        )

    # -- invariants ----------------------------------------------------------

    def check_lemma1(self) -> bool:
        """Check Lemma 1: a non-zero cell (i, j) forbids non-zero cells
        (k, l) with ``i < k < j and j < l`` or ``i < l < j and k < i``.

        Histograms built from real interval data always satisfy this;
        hand-constructed ones may not.  Returns True when the invariant
        holds.
        """
        size = self.grid.size
        populated = sorted(divmod(code, size) for code in self._merged_cells())
        for (i, j) in populated:
            if i == j:
                # A diagonal cell only constrains pairs via its interior
                # positions; at bucket granularity it forbids nothing.
                continue
            for (k, l) in populated:
                if i < k < j and l > j:
                    return False
                if i < l < j and k < i:
                    return False
        return True


def build_position_histogram(
    tree: LabeledTree,
    node_indices: Iterable[int],
    grid: GridSpec,
    name: str = "",
) -> PositionHistogram:
    """Build the position histogram of the nodes at ``node_indices``.

    Vectorised: bucketises all starts and ends with numpy, counts
    distinct cells in one pass, and installs the result directly as a
    frozen page.
    """
    idx = np.asarray(list(node_indices), dtype=np.int64)
    histogram = PositionHistogram(grid, name=name)
    if len(idx) == 0:
        return histogram
    cols = grid.buckets(tree.start[idx])
    rows = grid.buckets(tree.end[idx])
    if np.any(rows < cols):
        raise ValueError("node below the diagonal cannot be populated")
    keys = cols * grid.size + rows
    unique, counts = np.unique(keys, return_counts=True)
    histogram._install_page(unique, counts.astype(np.float64))
    return histogram
