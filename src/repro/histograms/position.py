"""Position histograms (paper Section 3.1).

A :class:`PositionHistogram` counts, for each grid cell ``(i, j)``, the
nodes satisfying a predicate whose start position falls in bucket ``i``
and end position in bucket ``j``.  Lemma 1 of the paper implies heavy
structure: all mass lies on or above the diagonal, and a populated cell
forbids population in two rectangular regions, which is why only
``O(g)`` cells are non-zero (Theorem 1).

The class stores counts sparsely (a dict keyed by cell) and materialises
a dense ``g x g`` float matrix on demand for the vectorised estimators.
Counts are floats because synthesised histograms for compound predicates
(Section 3.4) are generally fractional.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.histograms.grid import GridSpec
from repro.labeling.interval import LabeledTree


class PositionHistogram:
    """Sparse 2-D histogram over (start-bucket, end-bucket) cells.

    Construct via :func:`build_position_histogram` (from data) or
    :meth:`from_cells` (from explicit counts, e.g. the paper's Fig. 7
    worked example).
    """

    def __init__(self, grid: GridSpec, cells: Optional[Mapping[tuple[int, int], float]] = None,
                 name: str = "") -> None:
        self.grid = grid
        self.name = name
        self._cells: dict[tuple[int, int], float] = {}
        self._dense: Optional[np.ndarray] = None
        if cells:
            for (i, j), count in cells.items():
                self._set(i, j, float(count))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_cells(
        cls,
        grid: GridSpec,
        cells: Mapping[tuple[int, int], float],
        name: str = "",
    ) -> "PositionHistogram":
        """Build from an explicit ``{(i, j): count}`` mapping."""
        return cls(grid, cells, name=name)

    def _set(self, i: int, j: int, count: float) -> None:
        if not (0 <= i < self.grid.size and 0 <= j < self.grid.size):
            raise ValueError(f"cell ({i}, {j}) outside {self.grid.size}x{self.grid.size} grid")
        if j < i:
            raise ValueError(f"cell ({i}, {j}) below the diagonal cannot be populated")
        if count < 0:
            raise ValueError(f"negative count {count} for cell ({i}, {j})")
        if count == 0:
            self._cells.pop((i, j), None)
        else:
            self._cells[(i, j)] = count
        self._dense = None

    # -- access ------------------------------------------------------------

    def count(self, i: int, j: int) -> float:
        """Count in cell ``(i, j)`` (0.0 if empty)."""
        return self._cells.get((i, j), 0.0)

    def cells(self) -> Iterator[tuple[tuple[int, int], float]]:
        """Yield ``((i, j), count)`` for non-zero cells, sorted."""
        for key in sorted(self._cells):
            yield key, self._cells[key]

    def nonzero_cell_count(self) -> int:
        """Number of non-zero cells (the Theorem 1 quantity)."""
        return len(self._cells)

    def total(self) -> float:
        """Total mass -- for data-built histograms, the node count."""
        return float(sum(self._cells.values()))

    def dense(self) -> np.ndarray:
        """Dense ``g x g`` float64 matrix (cached, read-only).

        The returned array is the shared cache with the write flag
        cleared, so accidental mutation raises instead of silently
        corrupting every later estimate; callers that need a scratch
        copy must ``.copy()`` explicitly.
        """
        if self._dense is None:
            matrix = np.zeros((self.grid.size, self.grid.size), dtype=np.float64)
            for (i, j), count in self._cells.items():
                matrix[i, j] = count
            matrix.setflags(write=False)
            self._dense = matrix
        return self._dense

    def apply_delta(self, cols: np.ndarray, rows: np.ndarray, sign: int = 1) -> None:
        """Add (``sign=+1``) or remove (``sign=-1``) one node per
        ``(cols[k], rows[k])`` cell -- the incremental-maintenance hook.

        Counts are integer-valued floats, so additions and removals are
        exact and a maintained histogram stays bit-identical to one
        rebuilt from scratch over the same nodes.  Cells that reach zero
        are dropped, exactly as the from-scratch builder never creates
        them; a removal that would drive a cell negative raises, because
        it means the delta does not describe nodes actually counted.
        """
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        if len(cols) == 0:
            return
        keys, counts = np.unique(
            np.asarray(cols, dtype=np.int64) * self.grid.size
            + np.asarray(rows, dtype=np.int64),
            return_counts=True,
        )
        for key, count in zip(keys.tolist(), counts.tolist()):
            i, j = divmod(key, self.grid.size)
            updated = self.count(i, j) + sign * count
            if updated < 0:
                raise ValueError(
                    f"delta would drive cell ({i}, {j}) below zero "
                    f"({self.count(i, j)} - {count})"
                )
            self._set(i, j, updated)

    def apply_signed_delta(
        self, cols: np.ndarray, rows: np.ndarray, signs: np.ndarray
    ) -> None:
        """Apply per-node signed deltas in one accumulation pass.

        ``signs[k]`` is ``+1`` to count the node at cell
        ``(cols[k], rows[k])`` or ``-1`` to remove it.  This is the
        batch-maintenance hook: a whole update batch flushes into the
        histogram with a single ``np.add.at``-style accumulation instead
        of one Python pass per update, and inserts cancel deletes of the
        same cell before any cell is touched.  Semantics otherwise match
        :meth:`apply_delta` (exact integer counts, zero cells dropped,
        underflow raises).
        """
        cols = np.asarray(cols, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.int64)
        if not (len(cols) == len(rows) == len(signs)):
            raise ValueError("cols, rows, and signs must be aligned")
        if len(cols) == 0:
            return
        keys = cols * self.grid.size + rows
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(len(unique), dtype=np.int64)
        np.add.at(sums, inverse, signs)
        for key, delta in zip(unique.tolist(), sums.tolist()):
            if delta == 0:
                continue
            i, j = divmod(key, self.grid.size)
            updated = self.count(i, j) + delta
            if updated < 0:
                raise ValueError(
                    f"delta would drive cell ({i}, {j}) below zero "
                    f"({self.count(i, j)} {delta:+d})"
                )
            self._set(i, j, updated)

    def copy(self) -> "PositionHistogram":
        """An independent value copy (same grid object, own cell map).

        Snapshot isolation hinges on this: the maintenance paths mutate
        histograms in place, so a reader pinning the current state takes
        an ``O(g)`` cell-map copy instead of sharing the dict.
        """
        return PositionHistogram(self.grid, self._cells, name=self.name)

    def scaled(self, factor: float, name: str = "") -> "PositionHistogram":
        """A copy with every cell multiplied by ``factor``."""
        return PositionHistogram(
            self.grid,
            {cell: count * factor for cell, count in self._cells.items()},
            name=name or self.name,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PositionHistogram):
            return NotImplemented
        return self.grid == other.grid and self._cells == other._cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PositionHistogram({self.name or '?'}, g={self.grid.size}, "
            f"cells={len(self._cells)}, total={self.total():g})"
        )

    # -- invariants ----------------------------------------------------------

    def check_lemma1(self) -> bool:
        """Check Lemma 1: a non-zero cell (i, j) forbids non-zero cells
        (k, l) with ``i < k < j and j < l`` or ``i < l < j and k < i``.

        Histograms built from real interval data always satisfy this;
        hand-constructed ones may not.  Returns True when the invariant
        holds.
        """
        populated = sorted(self._cells)
        for (i, j) in populated:
            if i == j:
                # A diagonal cell only constrains pairs via its interior
                # positions; at bucket granularity it forbids nothing.
                continue
            for (k, l) in populated:
                if i < k < j and l > j:
                    return False
                if i < l < j and k < i:
                    return False
        return True


def build_position_histogram(
    tree: LabeledTree,
    node_indices: Iterable[int],
    grid: GridSpec,
    name: str = "",
) -> PositionHistogram:
    """Build the position histogram of the nodes at ``node_indices``.

    Vectorised: bucketises all starts and ends with numpy and counts
    distinct cells in one pass.
    """
    idx = np.asarray(list(node_indices), dtype=np.int64)
    histogram = PositionHistogram(grid, name=name)
    if len(idx) == 0:
        return histogram
    cols = grid.buckets(tree.start[idx])
    rows = grid.buckets(tree.end[idx])
    keys = cols * grid.size + rows
    unique, counts = np.unique(keys, return_counts=True)
    for key, count in zip(unique.tolist(), counts.tolist()):
        histogram._set(key // grid.size, key % grid.size, float(count))
    return histogram
