"""Persistent summary store.

A database keeps its statistics on disk and loads them at optimizer
startup; this module provides that layer: a directory of histogram
files plus a manifest, written from a built
:class:`~repro.estimation.estimator.AnswerSizeEstimator` and loadable
without touching the data again.

Layout::

    <dir>/manifest.json            grid spec + predicate index
    <dir>/<n>.position.json        position histogram of predicate n
    <dir>/<n>.coverage.json        coverage histogram (no-overlap only)

Only predicates that have actually been summarised (histogram built)
are persisted, mirroring the paper's policy of building histograms for
the predicates worth the storage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.histograms.coverage import CoverageHistogram
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.histograms.storage import load_histogram, save_histogram


class SummaryStore:
    """Read/write a directory of persisted histograms."""

    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # -- writing -----------------------------------------------------------

    def save(self, estimator) -> int:
        """Persist every histogram the estimator has built so far.

        Returns the number of predicates written.  The estimator's
        caches are inspected directly; predicates whose histograms were
        never requested are skipped.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest: dict = {
            "grid": {
                "size": estimator.grid.size,
                "max_label": estimator.grid.max_label,
                "boundaries": list(estimator.grid.boundaries)
                if estimator.grid.boundaries
                else None,
            },
            "predicates": [],
        }
        written = 0
        for index, (predicate, histogram) in enumerate(
            estimator._position_cache.items()
        ):
            entry = {
                "index": index,
                "name": predicate.name,
                "description": predicate.description(),
                "no_overlap": estimator.is_no_overlap(predicate),
                "count": histogram.total(),
            }
            save_histogram(histogram, self.directory / f"{index}.position.json")
            coverage = estimator._coverage_cache.get(predicate)
            if coverage is not None:
                save_histogram(coverage, self.directory / f"{index}.coverage.json")
                entry["has_coverage"] = True
            else:
                entry["has_coverage"] = False
            manifest["predicates"].append(entry)
            written += 1
        (self.directory / self.MANIFEST).write_text(json.dumps(manifest, indent=1))
        return written

    # -- reading -----------------------------------------------------------

    def load_manifest(self) -> dict:
        path = self.directory / self.MANIFEST
        if not path.exists():
            raise FileNotFoundError(f"no summary manifest in {self.directory}")
        return json.loads(path.read_text())

    def grid(self) -> GridSpec:
        meta = self.load_manifest()["grid"]
        boundaries = meta.get("boundaries")
        return GridSpec(
            size=meta["size"],
            max_label=meta["max_label"],
            boundaries=tuple(boundaries) if boundaries else None,
        )

    def load_position(self, name: str) -> PositionHistogram:
        """Load a predicate's position histogram by predicate name."""
        entry = self._entry(name)
        histogram = load_histogram(
            self.directory / f"{entry['index']}.position.json"
        )
        assert isinstance(histogram, PositionHistogram)
        return histogram

    def load_coverage(self, name: str) -> CoverageHistogram | None:
        """Load a predicate's coverage histogram, or None if absent."""
        entry = self._entry(name)
        if not entry.get("has_coverage"):
            return None
        histogram = load_histogram(
            self.directory / f"{entry['index']}.coverage.json"
        )
        assert isinstance(histogram, CoverageHistogram)
        return histogram

    def predicate_names(self) -> list[str]:
        return [e["name"] for e in self.load_manifest()["predicates"]]

    def total_bytes(self) -> int:
        """On-disk footprint of the store (all files)."""
        return sum(p.stat().st_size for p in self.directory.iterdir())

    def _entry(self, name: str) -> dict:
        for entry in self.load_manifest()["predicates"]:
            if entry["name"] == name:
                return entry
        raise KeyError(f"predicate {name!r} is not in the summary store")
