"""Persistent summary store.

A database keeps its statistics on disk and loads them at optimizer
startup; this module provides that layer: a directory of histogram
files plus a manifest, written from a built
:class:`~repro.estimation.estimator.AnswerSizeEstimator` and loadable
without touching the data again.

Two formats are provided:

* the JSON directory layout (diff-able, used by the experiments)::

      <dir>/manifest.json            grid spec + predicate index
      <dir>/<n>.position.json        position histogram of predicate n
      <dir>/<n>.coverage.json        coverage histogram (no-overlap only)

* a single-file versioned binary format
  (:func:`save_binary_summaries` / :func:`load_binary_summaries`): one
  ``.npz`` archive whose ``manifest`` member is a JSON header carrying a
  format tag and version number, and whose array members hold cell
  indices and counts as raw int64/float64 -- exact round trips, one
  ``mmap``-able file, the format the online
  :class:`~repro.service.EstimationService` persists and warm-starts
  from.

Only predicates that have actually been summarised (histogram built)
are persisted, mirroring the paper's policy of building histograms for
the predicates worth the storage.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.histograms.coverage import CoverageHistogram
from repro.histograms.epoch import ensure_epoch_floor
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.histograms.storage import (
    grid_from_payload,
    grid_payload,
    load_histogram,
    save_histogram,
)
from repro.storage.pagefile import (
    PageFile,
    encode_page_file,
    open_array_container,
)

BINARY_FORMAT = "repro-summaries"
BINARY_VERSION = 1
#: Checkpoint summary archives: epoch-addressed members that later
#: incremental checkpoints can reference instead of re-writing.
PAGED_VERSION = 2


class SummaryFormatError(ValueError):
    """The file is not a readable summary store (corrupt or foreign)."""


class SummaryVersionError(SummaryFormatError):
    """The file is a summary store written by an incompatible version."""


class SummaryStore:
    """Read/write a directory of persisted histograms."""

    MANIFEST = "manifest.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    # -- writing -----------------------------------------------------------

    def save(self, estimator) -> int:
        """Persist every histogram the estimator has built so far.

        Returns the number of predicates written.  The estimator's
        caches are inspected directly; predicates whose histograms were
        never requested are skipped.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest: dict = {
            "grid": grid_payload(estimator.grid),
            "predicates": [],
        }
        written = 0
        for index, (predicate, histogram) in enumerate(
            estimator._position_cache.items()
        ):
            entry = {
                "index": index,
                "name": predicate.name,
                "description": predicate.description(),
                "no_overlap": estimator.is_no_overlap(predicate),
                "count": histogram.total(),
            }
            entry.update(_predicate_identity(predicate))
            save_histogram(histogram, self.directory / f"{index}.position.json")
            coverage = estimator._coverage_cache.get(predicate)
            if coverage is not None:
                save_histogram(coverage, self.directory / f"{index}.coverage.json")
                entry["has_coverage"] = True
            else:
                entry["has_coverage"] = False
            manifest["predicates"].append(entry)
            written += 1
        (self.directory / self.MANIFEST).write_text(json.dumps(manifest, indent=1))
        return written

    # -- reading -----------------------------------------------------------

    def load_manifest(self) -> dict:
        path = self.directory / self.MANIFEST
        if not path.exists():
            raise FileNotFoundError(f"no summary manifest in {self.directory}")
        return json.loads(path.read_text())

    def grid(self) -> GridSpec:
        return grid_from_payload(self.load_manifest()["grid"])

    def load_position(self, name: str) -> PositionHistogram:
        """Load a predicate's position histogram by predicate name."""
        entry = self._entry(name)
        histogram = load_histogram(
            self.directory / f"{entry['index']}.position.json"
        )
        assert isinstance(histogram, PositionHistogram)
        return histogram

    def load_coverage(self, name: str) -> CoverageHistogram | None:
        """Load a predicate's coverage histogram, or None if absent."""
        entry = self._entry(name)
        if not entry.get("has_coverage"):
            return None
        histogram = load_histogram(
            self.directory / f"{entry['index']}.coverage.json"
        )
        assert isinstance(histogram, CoverageHistogram)
        return histogram

    def predicate_names(self) -> list[str]:
        return [e["name"] for e in self.load_manifest()["predicates"]]

    def total_bytes(self) -> int:
        """On-disk footprint of the store (all files)."""
        return sum(p.stat().st_size for p in self.directory.iterdir())

    def _entry(self, name: str) -> dict:
        for entry in self.load_manifest()["predicates"]:
            if entry["name"] == name:
                return entry
        raise KeyError(f"predicate {name!r} is not in the summary store")


# -- binary (.npz) format ----------------------------------------------------


def tree_fingerprint(tree) -> str:
    """Content hash of a labeled tree's structure: labels + tag sequence.

    Everything a warm-started tag-predicate summary depends on -- the
    start/end label arrays (which encode structure and spacing) and the
    pre-order tag sequence (which encodes membership) -- feeds a sha256.
    Two databases agree on this fingerprint iff every persisted tag
    histogram is valid for both, so it is the staleness check for
    warm starts (same element *count* alone is not enough).
    """
    return tree_fingerprint_from_parts(
        tree.start, tree.end, (e.tag for e in tree.elements)
    )


def tree_fingerprint_from_parts(start, end, tags) -> str:
    """:func:`tree_fingerprint` from its raw ingredients.

    ``tags`` is the pre-order tag sequence as an iterable of strings.
    The lazy checkpoint loader uses this to validate a mapped
    checkpoint without materialising a single ``Element``: the label
    arrays are mmap views and the tag sequence comes from the stored
    tag-code segment plus the vocabulary -- byte-identical input to
    what the eager path hashes.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(start, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(end, dtype=np.int64).tobytes())
    digest.update("\x00".join(tags).encode("utf-8"))
    return digest.hexdigest()


def _predicate_identity(predicate) -> dict:
    """Manifest fields that let a loader reconstruct the predicate.

    Tag predicates (the paper's workhorse, and the only kind an online
    service warm-starts automatically) round-trip as their tag; every
    other predicate is recorded as ``opaque`` -- its histograms are
    still persisted and loadable by name.
    """
    from repro.predicates.base import TagPredicate

    if isinstance(predicate, TagPredicate):
        return {"kind": "tag", "tag": predicate.tag}
    return {"kind": "opaque"}


@dataclass
class LoadedSummary:
    """One predicate's statistics as read from a binary store."""

    name: str
    kind: str
    tag: Optional[str]
    no_overlap: bool
    count: float
    position: PositionHistogram
    coverage: Optional[CoverageHistogram]


@dataclass
class LoadedSummaries:
    """Everything a binary store holds: the grid plus per-predicate rows."""

    grid: GridSpec
    summaries: list[LoadedSummary]
    fingerprint: Optional[str] = None

    def by_name(self) -> dict[str, LoadedSummary]:
        return {s.name: s for s in self.summaries}


def save_binary_summaries(
    estimator, path: Union[str, Path], container: Optional[str] = None
) -> int:
    """Persist every built histogram of ``estimator`` as one file.

    The archive's ``manifest`` member is a JSON header
    (``format``/``version``/grid/predicate index); each predicate ``k``
    contributes ``p<k>.cells`` (int64, shape ``(n, 2)``) and
    ``p<k>.counts`` (float64) for its position histogram, plus
    ``p<k>.cvg_keys`` (int64, shape ``(n, 4)``) and ``p<k>.cvg_fracs``
    (float64) when a coverage histogram exists.  Returns the number of
    predicates written.

    ``container`` picks the envelope: ``"npz"`` (compressed archive,
    the default) or ``"pagefile"`` (mmap-served
    :mod:`repro.storage.pagefile`, zero-copy warm starts); paths ending
    in ``.pgf`` default to the page file.  Loaders sniff the container
    by magic, so either loads transparently.
    """
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {
        "format": BINARY_FORMAT,
        "version": BINARY_VERSION,
        "grid": grid_payload(estimator.grid),
        "predicates": [],
    }
    tree = getattr(estimator, "tree", None)
    if tree is not None:
        manifest["fingerprint"] = tree_fingerprint(tree)
    written = 0
    for index, (predicate, histogram) in enumerate(
        estimator._position_cache.items()
    ):
        cells = list(histogram.cells())
        arrays[f"p{index}.cells"] = np.asarray(
            [key for key, _ in cells], dtype=np.int64
        ).reshape(len(cells), 2)
        arrays[f"p{index}.counts"] = np.asarray(
            [count for _, count in cells], dtype=np.float64
        )
        entry = {
            "index": index,
            "name": predicate.name,
            "no_overlap": estimator.is_no_overlap(predicate),
            "count": histogram.total(),
            "has_coverage": False,
        }
        entry.update(_predicate_identity(predicate))
        coverage = estimator._coverage_cache.get(predicate)
        if coverage is not None:
            entries = list(coverage.entries())
            arrays[f"p{index}.cvg_keys"] = np.asarray(
                [key for key, _ in entries], dtype=np.int64
            ).reshape(len(entries), 4)
            arrays[f"p{index}.cvg_fracs"] = np.asarray(
                [fraction for _, fraction in entries], dtype=np.float64
            )
            entry["has_coverage"] = True
        manifest["predicates"].append(entry)
        written += 1
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if container is None:
        container = "pagefile" if path.suffix == ".pgf" else "npz"
    if container == "pagefile":
        path.write_bytes(encode_page_file(arrays))
    else:
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
    return written


def save_summary_pages(
    estimator,
    path: Union[str, Path],
    lsn: int,
    prior: Optional[dict] = None,
    container: str = "npz",
) -> dict:
    """Write a checkpoint summary archive with epoch-addressed members.

    Every built histogram is stamped with a process-unique epoch id
    (``PositionHistogram.version`` / ``CoverageHistogram.version``) that
    changes whenever its content changes.  ``prior`` is the index
    returned by the previous checkpoint's call (``{name: {"epoch",
    "at", "cvg_epoch", "cvg_at"}}``): a histogram whose epoch is
    unchanged is **not** re-written -- its manifest entry references the
    checkpoint file that last archived it (``"ref"``/``"cvg_ref"``),
    which may itself be an older incremental checkpoint (reference
    chains are resolved at load time).  With ``prior=None`` every
    member is archived here (a *full* summary archive).

    Array members are named by epoch (``e<epoch>.cells`` /
    ``e<epoch>.counts``; coverage ``c<epoch>.keys`` / ``c<epoch>.fracs``)
    so a referencing manifest can locate them without knowing the
    writer's predicate ordering.  Returns the new index to thread into
    the next checkpoint.

    ``container`` selects the envelope.  ``"npz"`` keeps the legacy
    compressed archive.  ``"pagefile"`` writes an mmap-served
    :mod:`repro.storage.pagefile` whose position members are the frozen
    page's *packed* arrays (``e<epoch>.codes`` + ``e<epoch>.counts``,
    exactly :meth:`~repro.histograms.position.PositionHistogram.cell_arrays`)
    -- sealed/merged pages materialise straight into the file, and the
    loader adopts the segments back as zero-copy pages.  The loader
    accepts either member spelling from either envelope, so reference
    chains may cross formats.
    """
    arrays: dict[str, np.ndarray] = {}
    manifest: dict = {
        "format": BINARY_FORMAT,
        "version": PAGED_VERSION,
        "lsn": int(lsn),
        "grid": grid_payload(estimator.grid),
        "predicates": [],
    }
    tree = getattr(estimator, "tree", None)
    if tree is not None:
        manifest["fingerprint"] = tree_fingerprint(tree)
    prior = prior or {}
    index: dict[str, dict] = {}
    for predicate, histogram in estimator._position_cache.items():
        name = predicate.name
        epoch = int(histogram.version)
        previous = prior.get(name, {})
        entry = {
            "name": name,
            "no_overlap": estimator.is_no_overlap(predicate),
            "count": histogram.total(),
            "has_coverage": False,
            "epoch": epoch,
            "ref": None,
        }
        entry.update(_predicate_identity(predicate))
        at = lsn
        if previous.get("epoch") == epoch:
            entry["ref"] = at = previous["at"]
        elif container == "pagefile":
            # The frozen page's packed arrays verbatim: when the
            # histogram carries no overlay this references the page's
            # own buffers, so a sealed/merged page is materialised into
            # the file without any per-cell conversion.
            codes, counts = histogram.cell_arrays()
            arrays[f"e{epoch}.codes"] = codes
            arrays[f"e{epoch}.counts"] = counts
        else:
            cells = list(histogram.cells())
            arrays[f"e{epoch}.cells"] = np.asarray(
                [key for key, _ in cells], dtype=np.int64
            ).reshape(len(cells), 2)
            arrays[f"e{epoch}.counts"] = np.asarray(
                [count for _, count in cells], dtype=np.float64
            )
        row = {"epoch": epoch, "at": at}
        coverage = estimator._coverage_cache.get(predicate)
        if coverage is not None:
            cvg_epoch = int(coverage.version)
            entry["has_coverage"] = True
            entry["cvg_epoch"] = cvg_epoch
            entry["cvg_ref"] = None
            cvg_at = lsn
            if previous.get("cvg_epoch") == cvg_epoch:
                entry["cvg_ref"] = cvg_at = previous["cvg_at"]
            elif container == "pagefile":
                i, j, m, n, fractions = coverage.entry_arrays()
                arrays[f"c{cvg_epoch}.keys"] = np.stack([i, j, m, n], axis=1)
                arrays[f"c{cvg_epoch}.fracs"] = fractions
            else:
                entries = list(coverage.entries())
                arrays[f"c{cvg_epoch}.keys"] = np.asarray(
                    [key for key, _ in entries], dtype=np.int64
                ).reshape(len(entries), 4)
                arrays[f"c{cvg_epoch}.fracs"] = np.asarray(
                    [fraction for _, fraction in entries], dtype=np.float64
                )
            row["cvg_epoch"] = cvg_epoch
            row["cvg_at"] = cvg_at
        manifest["predicates"].append(entry)
        index[name] = row
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if container == "pagefile":
        path.write_bytes(encode_page_file(arrays))
    else:
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
    return index


def summary_page_refs(manifest: dict) -> set[int]:
    """LSNs of other checkpoints a paged manifest references."""
    refs: set[int] = set()
    for entry in manifest.get("predicates", []):
        for key in ("ref", "cvg_ref"):
            if entry.get(key) is not None:
                refs.add(int(entry[key]))
    return refs


def load_summary_pages(path: Union[str, Path], resolve=None) -> LoadedSummaries:
    """Load a checkpoint summary archive (paged v2 or legacy v1).

    ``resolve(lsn)`` must return an open npz archive holding the
    referenced members (the checkpoint loader hands out the summary
    archives of older checkpoints); a missing resolver with a
    referencing manifest -- or any unresolvable / malformed member --
    raises :class:`SummaryFormatError`, which the recovery path treats
    like a corrupt checkpoint (fall back to an older one).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no binary summary store at {path}")
    try:
        archive = open_array_container(path)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise SummaryFormatError(f"{path} is not a summary archive: {exc}") from exc
    with archive:
        if "manifest" not in archive.files:
            raise SummaryFormatError(f"{path} has no manifest member")
        try:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        except _MALFORMED_MEMBER_ERRORS as exc:
            raise SummaryFormatError(f"{path} has a corrupted manifest: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != BINARY_FORMAT:
            raise SummaryFormatError(f"{path} is not a {BINARY_FORMAT!r} archive")
        version = manifest.get("version")
        if version == BINARY_VERSION:
            try:
                grid = grid_from_payload(manifest["grid"])
                summaries = [
                    _load_summary(archive, grid, entry)
                    for entry in manifest["predicates"]
                ]
            except _MALFORMED_MEMBER_ERRORS as exc:
                raise SummaryFormatError(
                    f"{path} is corrupt or incomplete: {exc}"
                ) from exc
            return LoadedSummaries(
                grid=grid,
                summaries=summaries,
                fingerprint=manifest.get("fingerprint"),
            )
        if version != PAGED_VERSION:
            raise SummaryVersionError(
                f"{path} is summary-format version {version}; "
                f"this build reads versions {BINARY_VERSION} and {PAGED_VERSION}"
            )

        def source_for(entry_ref):
            if entry_ref is None:
                return archive
            if resolve is None:
                raise SummaryFormatError(
                    f"{path} references checkpoint {entry_ref} but no "
                    f"resolver was provided"
                )
            return resolve(int(entry_ref))

        def member(source, name):
            if name not in source.files:
                raise KeyError(f"missing member {name!r}")
            return source[name]

        max_epoch = 0
        try:
            grid = grid_from_payload(manifest["grid"])
            summaries = []
            for entry in manifest["predicates"]:
                epoch = int(entry["epoch"])
                max_epoch = max(max_epoch, epoch)
                source = source_for(entry.get("ref"))
                if f"e{epoch}.codes" in source.files:
                    # Page-file layout: the member *is* the frozen
                    # page.  Adopt it (and its stored epoch) zero-copy;
                    # ``backing`` keeps the mapping alive as long as
                    # any snapshot still reads the page.
                    position = PositionHistogram.from_page_arrays(
                        grid,
                        member(source, f"e{epoch}.codes"),
                        member(source, f"e{epoch}.counts"),
                        name=entry["name"],
                        epoch=epoch,
                        backing=source if isinstance(source, PageFile) else None,
                    )
                else:
                    cells = member(source, f"e{epoch}.cells")
                    counts = member(source, f"e{epoch}.counts")
                    position = PositionHistogram(
                        grid,
                        {
                            (int(i), int(j)): float(count)
                            for (i, j), count in zip(cells.tolist(), counts.tolist())
                        },
                        name=entry["name"],
                    )
                    # Same content the writer stamped with this epoch:
                    # adopt the id so post-recovery incremental
                    # checkpoints can reference instead of re-archive.
                    position._page.epoch = epoch
                    position.version = epoch
                coverage = None
                if entry.get("has_coverage"):
                    cvg_epoch = int(entry["cvg_epoch"])
                    max_epoch = max(max_epoch, cvg_epoch)
                    cvg_source = source_for(entry.get("cvg_ref"))
                    keys = member(cvg_source, f"c{cvg_epoch}.keys")
                    fracs = member(cvg_source, f"c{cvg_epoch}.fracs")
                    coverage = CoverageHistogram(
                        grid,
                        {
                            (int(i), int(j), int(m), int(n)): float(fraction)
                            for (i, j, m, n), fraction in zip(
                                keys.tolist(), fracs.tolist()
                            )
                        },
                        name=entry["name"],
                    )
                    coverage.version = cvg_epoch
                summaries.append(
                    LoadedSummary(
                        name=entry["name"],
                        kind=entry.get("kind", "opaque"),
                        tag=entry.get("tag"),
                        no_overlap=bool(entry["no_overlap"]),
                        count=float(entry["count"]),
                        position=position,
                        coverage=coverage,
                    )
                )
        except _MALFORMED_MEMBER_ERRORS as exc:
            raise SummaryFormatError(
                f"{path} is corrupt or incomplete: {exc}"
            ) from exc
    ensure_epoch_floor(max_epoch)
    return LoadedSummaries(
        grid=grid, summaries=summaries, fingerprint=manifest.get("fingerprint")
    )


def read_summary_manifest(path: Union[str, Path]) -> dict:
    """The JSON manifest of a summary archive (any version)."""
    try:
        with open_array_container(Path(path)) as archive:
            return json.loads(bytes(archive["manifest"]).decode("utf-8"))
    except _MALFORMED_MEMBER_ERRORS as exc:
        raise SummaryFormatError(f"{path} has no readable manifest: {exc}") from exc


def load_binary_summaries(path: Union[str, Path]) -> LoadedSummaries:
    """Load a ``.npz`` summary store written by :func:`save_binary_summaries`.

    Raises
    ------
    FileNotFoundError
        The path does not exist.
    SummaryVersionError
        The file is a summary store of an incompatible version.
    SummaryFormatError
        The file is not a summary store, or its manifest / array members
        are corrupt.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no binary summary store at {path}")
    try:
        archive = open_array_container(path)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise SummaryFormatError(f"{path} is not a summary archive: {exc}") from exc
    with archive:
        if "manifest" not in archive.files:
            raise SummaryFormatError(f"{path} has no manifest member")
        try:
            manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        except _MALFORMED_MEMBER_ERRORS as exc:
            raise SummaryFormatError(f"{path} has a corrupted manifest: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != BINARY_FORMAT:
            raise SummaryFormatError(
                f"{path} is not a {BINARY_FORMAT!r} archive"
            )
        version = manifest.get("version")
        if version != BINARY_VERSION:
            raise SummaryVersionError(
                f"{path} is summary-format version {version}; "
                f"this build reads version {BINARY_VERSION}"
            )
        try:
            grid = grid_from_payload(manifest["grid"])
            summaries = [
                _load_summary(archive, grid, entry)
                for entry in manifest["predicates"]
            ]
        except _MALFORMED_MEMBER_ERRORS as exc:
            # Covers both an incomplete manifest (missing/mistyped
            # fields) and array members that fail to decompress -- a
            # truncated or bit-flipped .npz raises BadZipFile / CRC /
            # zlib errors only when the member is actually read.
            raise SummaryFormatError(
                f"{path} is corrupt or incomplete: {exc}"
            ) from exc
    return LoadedSummaries(
        grid=grid, summaries=summaries, fingerprint=manifest.get("fingerprint")
    )


#: Everything a malformed store can raise while its members are read:
#: manifest/JSON decoding issues, missing or mistyped manifest fields,
#: and the zip/zlib/numpy errors a truncated or bit-flipped archive
#: produces lazily at member-access time.
_MALFORMED_MEMBER_ERRORS = (
    KeyError,
    TypeError,
    IndexError,
    ValueError,
    AttributeError,
    OSError,
    EOFError,
    UnicodeDecodeError,
    json.JSONDecodeError,
    zipfile.BadZipFile,
    zlib.error,
)


def _load_summary(archive, grid: GridSpec, entry: dict) -> LoadedSummary:
    index = entry["index"]
    cells_key, counts_key = f"p{index}.cells", f"p{index}.counts"
    if cells_key not in archive.files or counts_key not in archive.files:
        raise KeyError(f"missing array member for predicate {entry['name']!r}")
    cells = archive[cells_key]
    counts = archive[counts_key]
    position = PositionHistogram(
        grid,
        {
            (int(i), int(j)): float(count)
            for (i, j), count in zip(cells.tolist(), counts.tolist())
        },
        name=entry["name"],
    )
    coverage = None
    if entry.get("has_coverage"):
        keys_key, fracs_key = f"p{index}.cvg_keys", f"p{index}.cvg_fracs"
        if keys_key not in archive.files or fracs_key not in archive.files:
            raise KeyError(f"missing coverage member for predicate {entry['name']!r}")
        coverage = CoverageHistogram(
            grid,
            {
                (int(i), int(j), int(m), int(n)): float(fraction)
                for (i, j, m, n), fraction in zip(
                    archive[keys_key].tolist(), archive[fracs_key].tolist()
                )
            },
            name=entry["name"],
        )
    return LoadedSummary(
        name=entry["name"],
        kind=entry.get("kind", "opaque"),
        tag=entry.get("tag"),
        no_overlap=bool(entry["no_overlap"]),
        count=float(entry["count"]),
        position=position,
        coverage=coverage,
    )
