"""Sharded (optionally multi-process) construction of the statistics set.

The offline builders construct each summary lazily, one predicate at a
time, re-walking the label arrays per predicate; the online service's
rebuild path cannot afford that.  This module builds *everything the
service serves* -- per-tag catalog index arrays, per-tag position
histograms, the TRUE histogram, and integer coverage numerators for
every no-overlap tag -- in one sharded pass:

* the forest is partitioned into **unit subtrees** (document roots,
  recursively split into their children while shards are scarce), so
  every ancestor/descendant relationship is contained in one shard and
  per-shard results merge by plain integer addition;
* the handful of **spine** nodes above the units (at most the split
  roots) are accounted for by the parent process directly;
* each shard is a pure function of numpy slices -- no tree objects
  cross the process boundary -- so the work distributes over a
  ``multiprocessing`` pool and degrades gracefully to in-process
  execution when no pool is available (``n_workers=1``, restricted
  sandboxes);
* coverage numerators use the no-overlap nearest-member formulation:
  a node's unique covering predicate node is the member with the
  greatest ``start`` at or below its own, found by one ``searchsorted``
  per tag instead of materialising every (ancestor, descendant) pair.

Every produced structure is **bit-identical** to its lazily built
serial counterpart (integer counts, same label arithmetic), which the
parallel-build test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.histograms.coverage import CellPair, CoverageNumerators
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.labeling.interval import LabeledTree
from repro.storage.pagefile import PageFile
from repro.utils.arrays import group_by_code

#: Per-worker cache of read-only checkpoint mappings (see the
#: ``"mapped"`` payload in :func:`_build_shard`): one ``mmap`` per file
#: per worker process, reused across shards and rebuilds.
_WORKER_PAGEFILES: dict[str, PageFile] = {}


def _worker_pagefile(path: str) -> PageFile:
    mapping = _WORKER_PAGEFILES.get(path)
    if mapping is None:
        mapping = _WORKER_PAGEFILES[path] = PageFile(path)
    return mapping


@dataclass
class BuiltStatistics:
    """Everything one sharded build pass produces.

    ``coverage_numerators`` only holds tags whose node set has the
    no-overlap property in the data (the only tags the estimators build
    coverage for); ``tag_indices`` arrays are sorted ascending and
    write-protected, ready to hand to a
    :class:`~repro.predicates.catalog.PredicateCatalog`.
    """

    grid: GridSpec
    tag_indices: dict[str, np.ndarray]
    no_overlap: dict[str, bool]
    position: dict[str, PositionHistogram]
    true_histogram: PositionHistogram
    coverage_numerators: dict[str, "CoverageNumerators"]
    shards: int
    workers: int


def covering_members(
    starts: np.ndarray,
    ends: np.ndarray,
    members: np.ndarray,
    nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Each node's unique covering member, for no-overlap member sets.

    ``members`` and ``nodes`` index rows of ``starts``/``ends``;
    members must be ascending and pairwise non-nested, so a node has at
    most one covering member: the member with the greatest start at or
    below the node's own start whose end strictly exceeds the node's
    end (a node never covers itself -- equal ends fail the strict
    check).  Returns the covered subset of ``nodes`` and its aligned
    covering members.  This is the one searchsorted kernel shared by
    the sharded builder and the batch coverage patches.
    """
    empty = np.empty(0, dtype=np.int64)
    if members.size == 0 or nodes.size == 0:
        return empty, empty
    candidate = np.searchsorted(starts[members], starts[nodes], side="right") - 1
    has = candidate >= 0
    covered = np.zeros(len(nodes), dtype=bool)
    covered[has] = ends[members[candidate[has]]] > ends[nodes[has]]
    slots = np.flatnonzero(covered)
    return nodes[slots], members[candidate[slots]]


def nearest_member_ancestors(
    parents: np.ndarray,
    members: np.ndarray,
    nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Each node's nearest proper ancestor in ``members`` by walking
    parent chains -- all chains stepped together, one vectorized round
    per ancestor level (the overlap-tolerant sibling of
    :func:`covering_members`; ``members`` must be sorted ascending).

    Returns the subset of ``nodes`` that has a member ancestor and the
    aligned ancestors, in ``nodes`` order.
    """
    empty = np.empty(0, dtype=np.int64)
    if members.size == 0 or nodes.size == 0:
        return empty, empty
    current = parents[nodes]
    found = np.full(len(nodes), -1, dtype=np.int64)
    active = np.flatnonzero(current >= 0)
    while active.size:
        walk = current[active]
        slot = np.searchsorted(members, walk)
        hit = (slot < len(members)) & (members[np.minimum(slot, len(members) - 1)] == walk)
        found[active[hit]] = walk[hit]
        rest = active[~hit]
        current[rest] = parents[current[rest]]
        active = rest[current[rest] >= 0]
    slots = np.flatnonzero(found >= 0)
    return nodes[slots], found[slots]


def nearest_member_pairs(
    starts: np.ndarray,
    ends: np.ndarray,
    member_slots: np.ndarray,
    cell_codes: np.ndarray,
    grid_cells: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Coverage pair counts for a no-overlap member set, vectorised.

    Returns ``(pair_keys, counts)`` over all of ``starts``'s rows, with
    ``pair_key = covered_cell * grid_cells + covering_cell``.
    """
    nodes, covering = covering_members(
        starts, ends, member_slots, np.arange(len(starts), dtype=np.int64)
    )
    if nodes.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = cell_codes[nodes] * grid_cells + cell_codes[covering]
    return np.unique(keys, return_counts=True)


def _build_shard(payload: tuple) -> dict:
    """Build one shard's statistics from pure arrays (worker side).

    The payload carries concatenated slices of the label table for the
    shard's unit subtrees: ``starts``/``ends``/``codes`` aligned with
    ``global_index`` (the nodes' pre-order indices in the full tree).
    Coverage pairs are computed for every tag; the parent discards the
    tags that turn out to overlap globally before anything merges.

    When the parent's tree is served from a checkpoint mapping, the
    payload is ``("mapped", path, ranges, remap, grid)`` instead: the
    worker opens the same page file read-only (cached per process) and
    gathers its slices straight out of the mapping, so nothing but the
    range list and the tag-code remap crosses the process boundary.
    The gathers below produce the same arrays the eager payload
    carries, bit for bit.
    """
    if isinstance(payload[0], str) and payload[0] == "mapped":
        _, path, ranges, remap, grid = payload
        mapping = _worker_pagefile(path)
        global_index = np.concatenate(
            [np.arange(lo, hi, dtype=np.int64) for lo, hi in ranges]
        )
        starts = mapping["start"][global_index]
        ends = mapping["end"][global_index]
        codes = remap[mapping["fast.tags"][global_index]]
    else:
        starts, ends, codes, global_index, grid = payload
    g = grid.size
    g2 = g * g
    cols = grid.buckets(starts)
    rows = grid.buckets(ends)
    cell_codes = cols * g + rows
    true_keys, true_counts = np.unique(cell_codes, return_counts=True)

    tag_members: dict[int, np.ndarray] = {}
    position_cells: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    coverage_cells: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for code, slots in group_by_code(codes).items():
        tag_members[code] = global_index[slots]
        position_cells[code] = np.unique(cell_codes[slots], return_counts=True)
        pairs = nearest_member_pairs(starts, ends, slots, cell_codes, g2)
        if pairs[0].size:
            coverage_cells[code] = pairs
    return {
        "true": (true_keys, true_counts),
        "tag_members": tag_members,
        "position": position_cells,
        "coverage": coverage_cells,
    }


def partition_units(
    tree: LabeledTree, n_shards: int
) -> tuple[list[list[tuple[int, int]]], np.ndarray]:
    """Split the forest into per-shard unit-subtree ranges plus a spine.

    Starts from the root subtrees (the literal "partition the forest by
    root subtrees"); while there are fewer units than ``2 * n_shards``,
    the largest unit is replaced by its children and its own node joins
    the spine, so even a single-rooted document shards evenly.  Units
    are assigned to shards greedily in pre-order, balancing total node
    count, and each shard's units are coalesced into ``(lo, hi)``
    pre-order ranges.  Returns ``(shard_ranges, spine_indices)``.
    """
    n = len(tree)
    if n == 0:
        return [[] for _ in range(n_shards)], np.empty(0, dtype=np.int64)
    subtree_hi = np.searchsorted(tree.start, tree.end)
    units = [int(i) for i in np.flatnonzero(tree.parent_index == -1)]
    spine: list[int] = []
    for _ in range(64):  # bounded: each round splits one unit
        if len(units) >= 2 * n_shards:
            break
        sizes = [int(subtree_hi[u]) - u for u in units]
        biggest = max(range(len(units)), key=sizes.__getitem__)
        if sizes[biggest] <= 1:
            break
        u = units[biggest]
        block = tree.parent_index[u + 1 : int(subtree_hi[u])]
        children = (u + 1 + np.flatnonzero(block == u)).tolist()
        if not children:
            break
        spine.append(u)
        units[biggest : biggest + 1] = children
    units.sort()

    total = sum(int(subtree_hi[u]) - u for u in units)
    target = max(1, total // n_shards)
    shard_ranges: list[list[tuple[int, int]]] = []
    current: list[tuple[int, int]] = []
    acc = 0
    for u in units:
        lo, hi = u, int(subtree_hi[u])
        if current and current[-1][1] == lo:
            current[-1] = (current[-1][0], hi)  # coalesce adjacent units
        else:
            current.append((lo, hi))
        acc += hi - lo
        if acc >= target and len(shard_ranges) < n_shards - 1:
            shard_ranges.append(current)
            current, acc = [], 0
    shard_ranges.append(current)
    while len(shard_ranges) < n_shards:
        shard_ranges.append([])
    return shard_ranges, np.asarray(sorted(spine), dtype=np.int64)


def _tag_codes(
    tree: LabeledTree, tag_indices: Optional[dict[str, np.ndarray]]
) -> tuple[np.ndarray, list[str]]:
    """Per-node tag codes, scattering from maintained per-tag indices
    when a catalog already has them (the rebuild path skips the Python
    element scan entirely)."""
    if tag_indices is not None:
        names = sorted(tag_indices)
        codes = np.empty(len(tree), dtype=np.int64)
        for code, tag in enumerate(names):
            codes[tag_indices[tag]] = code
        return codes, names
    mapped = getattr(tree, "mapped_labels", None)
    if (
        mapped is not None
        and mapped.get("start") is tree.start
        and mapped.get("codes") is not None
    ):
        # Lazily recovered tree: the stored tag-code segment stands in
        # for the element scan (which would force the whole forest).
        vocab = mapped["vocab"]
        names = sorted(vocab)
        order = {tag: code for code, tag in enumerate(names)}
        remap = np.asarray([order[tag] for tag in vocab], dtype=np.int64)
        return remap[np.asarray(mapped["codes"], dtype=np.int64)], names
    code_of: dict[str, int] = {}
    codes = np.fromiter(
        (code_of.setdefault(e.tag, len(code_of)) for e in tree.elements),
        dtype=np.int64,
        count=len(tree.elements),
    )
    names = [tag for tag, _ in sorted(code_of.items(), key=lambda kv: kv[1])]
    return codes, names


def build_statistics_parallel(
    tree: LabeledTree,
    grid: GridSpec,
    n_workers: int = 1,
    pool=None,
    tag_indices: Optional[dict[str, np.ndarray]] = None,
) -> BuiltStatistics:
    """Build the full per-tag statistics set over ``tree``, sharded.

    Parameters
    ----------
    tree, grid:
        The labeled forest and the histogram grid to bucket into (any
        :class:`GridSpec`, including equi-depth boundaries).
    n_workers:
        Number of shards; with ``n_workers > 1`` the shards run on a
        ``multiprocessing`` pool (fork context when available).  Falls
        back to in-process shard execution when no pool can be created.
    pool:
        An existing ``multiprocessing.Pool`` to reuse (the service keeps
        one warm across rebuilds); ownership stays with the caller.
    tag_indices:
        Maintained per-tag index arrays to derive tag codes from,
        skipping the per-element Python scan (rebuilds pass the
        catalog's live index, cold starts leave this ``None``).
    """
    from repro.predicates.catalog import detect_no_overlap

    n_workers = max(1, int(n_workers))
    codes, names = _tag_codes(tree, tag_indices)
    g = grid.size
    g2 = g * g

    shard_ranges, spine = partition_units(tree, n_workers)
    mapped = getattr(tree, "mapped_labels", None)
    use_mapped = (
        mapped is not None
        and mapped.get("start") is tree.start
        and mapped.get("end") is tree.end
        and mapped.get("codes") is not None
        and set(mapped.get("vocab") or ()) == set(names)
        and len(mapped.get("vocab") or ()) == len(names)
    )
    if use_mapped:
        # Workers gather from the same mapping; ship only ranges plus
        # the stored-code -> names-order remap (set equality above
        # guarantees it is a bijection).
        order = {tag: code for code, tag in enumerate(names)}
        mapped_remap = np.asarray(
            [order[tag] for tag in mapped["vocab"]], dtype=np.int64
        )
    payloads = []
    for ranges in shard_ranges:
        if not ranges:
            continue
        if use_mapped:
            payloads.append(("mapped", mapped["path"], ranges, mapped_remap, grid))
            continue
        gidx = np.concatenate(
            [np.arange(lo, hi, dtype=np.int64) for lo, hi in ranges]
        )
        payloads.append(
            (tree.start[gidx], tree.end[gidx], codes[gidx], gidx, grid)
        )

    workers_used = 1
    if n_workers > 1 and len(payloads) > 1:
        results, workers_used = _run_shards(payloads, n_workers, pool)
    else:
        results = [_build_shard(p) for p in payloads]

    # -- merge by integer addition ----------------------------------------
    true_cells: dict[int, int] = {}
    members: dict[int, list[np.ndarray]] = {}
    position_cells: dict[int, dict[int, int]] = {}
    coverage_cells: dict[int, dict[int, int]] = {}
    for result in results:
        _accumulate(true_cells, *result["true"])
        for code, arr in result["tag_members"].items():
            members.setdefault(code, []).append(arr)
        for code, (keys, counts) in result["position"].items():
            _accumulate(position_cells.setdefault(code, {}), keys, counts)
        for code, (keys, counts) in result["coverage"].items():
            _accumulate(coverage_cells.setdefault(code, {}), keys, counts)

    # -- spine: the few nodes above the unit subtrees ----------------------
    spine_cols = grid.buckets(tree.start[spine])
    spine_rows = grid.buckets(tree.end[spine])
    spine_cells = spine_cols * g + spine_rows
    _accumulate(true_cells, *np.unique(spine_cells, return_counts=True))
    for slot, index in enumerate(spine.tolist()):
        code = int(codes[index])
        members.setdefault(code, []).append(
            np.asarray([index], dtype=np.int64)
        )
        cell = int(spine_cells[slot])
        pos = position_cells.setdefault(code, {})
        pos[cell] = pos.get(cell, 0) + 1

    tag_arrays: dict[str, np.ndarray] = {}
    no_overlap: dict[str, bool] = {}
    code_no_overlap: dict[int, bool] = {}
    for code, parts in sorted(members.items()):
        merged = np.sort(np.concatenate(parts)) if len(parts) > 1 else parts[0]
        merged.setflags(write=False)
        tag_arrays[names[code]] = merged
        flag = detect_no_overlap(tree, merged)
        no_overlap[names[code]] = flag
        code_no_overlap[code] = flag

    # Spine coverage: a spine member of a (globally) no-overlap tag is
    # the unique covering member of every node in its subtree.
    subtree_hi = np.searchsorted(tree.start, tree.end[spine]) if spine.size else []
    all_cells = None
    for slot, index in enumerate(spine.tolist()):
        code = int(codes[index])
        if not code_no_overlap.get(code, False):
            continue
        if all_cells is None:
            all_cells = grid.buckets(tree.start) * g + grid.buckets(tree.end)
        lo, hi = index + 1, int(subtree_hi[slot])
        keys, counts = np.unique(all_cells[lo:hi], return_counts=True)
        _accumulate(
            coverage_cells.setdefault(code, {}),
            keys * g2 + int(spine_cells[slot]),
            counts,
        )

    position = {
        names[code]: PositionHistogram(
            grid,
            {divmod(key, g): float(count) for key, count in cells.items()},
            name=names[code],
        )
        for code, cells in sorted(position_cells.items())
    }
    true_histogram = PositionHistogram(
        grid, {divmod(key, g): float(c) for key, c in true_cells.items()}
    )
    coverage_numerators: dict[str, CoverageNumerators] = {}
    for code, flag in sorted(code_no_overlap.items()):
        if not flag:
            continue  # the estimators never build coverage for overlap tags
        cells = coverage_cells.get(code, {})
        # pair_key = covered_cell * g^2 + covering_cell is exactly the
        # packed quad code CoverageNumerators stores -- no per-entry
        # decomposition needed.
        coverage_numerators[names[code]] = CoverageNumerators.from_code_counts(
            g,
            np.fromiter(cells.keys(), dtype=np.int64, count=len(cells)),
            np.fromiter(cells.values(), dtype=np.int64, count=len(cells)),
        )

    return BuiltStatistics(
        grid=grid,
        tag_indices=tag_arrays,
        no_overlap=no_overlap,
        position=position,
        true_histogram=true_histogram,
        coverage_numerators=coverage_numerators,
        shards=len(payloads),
        workers=workers_used,
    )


def _accumulate(into: dict[int, int], keys: np.ndarray, counts: np.ndarray) -> None:
    for key, count in zip(keys.tolist(), counts.tolist()):
        into[key] = into.get(key, 0) + count


def _run_shards(payloads: Sequence[tuple], n_workers: int, pool) -> tuple[list, int]:
    """Map shards over a process pool, in-process on any failure."""
    if pool is not None:
        return pool.map(_build_shard, payloads), n_workers
    try:
        created = create_pool(n_workers)
    except (ImportError, OSError, ValueError):
        return [_build_shard(p) for p in payloads], 1
    try:
        return created.map(_build_shard, payloads), n_workers
    finally:
        created.terminate()
        created.join()


def create_pool(n_workers: int):
    """A worker pool for shard builds (fork context when available).

    Callers own the pool: reuse it across rebuilds and ``terminate()``
    it when the owning service shuts down.  Raises ``OSError`` (or
    ``ImportError``) in environments where process pools cannot be
    created; callers fall back to in-process shard execution.
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        context = multiprocessing.get_context()
    return context.Pool(processes=max(1, int(n_workers)))
