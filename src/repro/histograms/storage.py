"""Storage accounting and binary serialisation of histograms.

The paper's storage experiments (Figs. 11-12) measure histogram size in
bytes as a function of grid size, showing linear growth (Theorems 1-2).
This module defines the byte model used in our reproduction and a simple
binary file format so experiments run on identical persisted summaries.

Byte model (documented so the figures are interpretable):

* position histogram -- each non-zero cell costs
  ``POSITION_ENTRY_BYTES`` = 1 byte column + 1 byte row + 2 bytes count
  (grid sides up to 256; counts saturate at 65535 in the storage model
  only, never in estimation).
* coverage histogram -- each *partial* entry (fraction strictly between
  0 and 1, the only entries Theorem 2 says must be stored explicitly)
  costs ``COVERAGE_ENTRY_BYTES`` = 4 bytes of cell-pair indices + 4 bytes
  for a float32 fraction.  Zero and full coverage are reconstructed from
  the position histogram and the grid geometry, so they are free.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.histograms.coverage import CoverageHistogram
from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram

POSITION_ENTRY_BYTES = 4
COVERAGE_ENTRY_BYTES = 8
HEADER_BYTES = 8  # grid size, max_label, entry count


def position_storage_bytes(histogram: PositionHistogram) -> int:
    """Bytes needed to store a position histogram under the byte model."""
    return HEADER_BYTES + POSITION_ENTRY_BYTES * histogram.nonzero_cell_count()


def coverage_storage_bytes(histogram: CoverageHistogram) -> int:
    """Bytes needed to store a coverage histogram under the byte model.

    Only partial entries are charged (Theorem 2); 0/1 entries are
    implied.
    """
    return HEADER_BYTES + COVERAGE_ENTRY_BYTES * histogram.partial_entry_count()


def save_histogram(
    histogram: Union[PositionHistogram, CoverageHistogram], path: Union[str, Path]
) -> None:
    """Persist a histogram as JSON (portable, diff-able in experiments)."""
    path = Path(path)
    if isinstance(histogram, PositionHistogram):
        payload = {
            "kind": "position",
            "name": histogram.name,
            "grid": grid_payload(histogram.grid),
            "cells": [[i, j, count] for (i, j), count in histogram.cells()],
        }
    elif isinstance(histogram, CoverageHistogram):
        payload = {
            "kind": "coverage",
            "name": histogram.name,
            "grid": grid_payload(histogram.grid),
            "entries": [
                [i, j, m, n, fraction]
                for (i, j, m, n), fraction in histogram.entries()
            ],
        }
    else:
        raise TypeError(f"cannot save {type(histogram).__name__}")
    path.write_text(json.dumps(payload))


def grid_payload(grid: GridSpec) -> dict:
    """JSON-serialisable description of a grid, non-uniform boundaries
    included (Python float repr round-trips exactly through JSON)."""
    return {
        "size": grid.size,
        "max_label": grid.max_label,
        "boundaries": list(grid.boundaries) if grid.boundaries else None,
    }


def grid_from_payload(meta: dict) -> GridSpec:
    """Inverse of :func:`grid_payload` (tolerates pre-boundary files)."""
    boundaries = meta.get("boundaries")
    return GridSpec(
        size=meta["size"],
        max_label=meta["max_label"],
        boundaries=tuple(boundaries) if boundaries else None,
    )


def load_histogram(path: Union[str, Path]) -> Union[PositionHistogram, CoverageHistogram]:
    """Load a histogram previously written by :func:`save_histogram`."""
    payload = json.loads(Path(path).read_text())
    grid = grid_from_payload(payload["grid"])
    if payload["kind"] == "position":
        cells = {(int(i), int(j)): float(c) for i, j, c in payload["cells"]}
        return PositionHistogram(grid, cells, name=payload.get("name", ""))
    if payload["kind"] == "coverage":
        entries = {
            (int(i), int(j), int(m), int(n)): float(f)
            for i, j, m, n, f in payload["entries"]
        }
        return CoverageHistogram(grid, entries, name=payload.get("name", ""))
    raise ValueError(f"unknown histogram kind {payload['kind']!r}")
