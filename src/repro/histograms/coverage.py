"""Coverage histograms for no-overlap predicates (paper Section 4.2).

For a predicate ``P`` with the no-overlap property (Definition 2), the
coverage histogram records, for each pair of grid cells, the fraction of
*all* database nodes in a covered cell that are descendants of some
P-node located in a covering cell::

    Cvg_P[i][j][m][n] = |{v in cell (i,j) : some P-ancestor of v in (m,n)}|
                        -----------------------------------------------
                        |{v in cell (i,j)}|

During estimation, the fraction observed over all nodes is assumed to
apply equally to the nodes of the descendant predicate ("the best one
can do is to determine what fraction of the total nodes in the cell are
descendants of a, and assume that the same fraction applies to d
nodes").

Theorem 2 of the paper: only ``O(g)`` cell pairs have *partial*
(non-zero, non-one) coverage, so the structure needs only linear
storage.  We expose :meth:`CoverageHistogram.partial_entry_count` so the
experiments can verify this directly.

Construction walks the mega-tree in pre-order with an explicit ancestor
stack, so it is exact for overlap predicates too (a node covered by two
P-ancestors in the same cell is counted once for that cell).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.labeling.interval import LabeledTree

CellPair = tuple[int, int, int, int]  # (i, j, m, n): covered cell, covering cell


class CoverageNumerators:
    """Integer coverage pair counts as flat sorted arrays.

    ``codes[k] = ((i * g + j) * g + m) * g + n`` encodes the cell pair
    ``(i, j, m, n)`` (covered cell high, covering cell low -- the same
    packing the pair-counting kernels emit), with ``counts[k] > 0`` the
    number of covered nodes for that pair.  Arrays are sorted by code
    and marked read-only; :meth:`patch` returns a *new* instance, so
    maintenance replaces rather than mutates (matching the snapshot
    contract everywhere else in the service).
    """

    __slots__ = ("grid_size", "codes", "counts")

    def __init__(self, grid_size: int, codes: np.ndarray, counts: np.ndarray) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        if codes.shape != counts.shape:
            raise ValueError("numerator codes and counts must be aligned")
        codes.setflags(write=False)
        counts.setflags(write=False)
        self.grid_size = int(grid_size)
        self.codes = codes
        self.counts = counts

    @classmethod
    def empty(cls, grid_size: int) -> "CoverageNumerators":
        return cls(grid_size, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_code_counts(
        cls, grid_size: int, codes: np.ndarray, counts: np.ndarray
    ) -> "CoverageNumerators":
        """From unordered (but distinct) pair codes with their counts."""
        codes = np.asarray(codes, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        order = np.argsort(codes, kind="stable")
        return cls(grid_size, codes[order], counts[order])

    @classmethod
    def from_mapping(
        cls, grid_size: int, mapping: Mapping[CellPair, int]
    ) -> "CoverageNumerators":
        g = grid_size
        codes = np.asarray(
            [((i * g + j) * g + m) * g + n for (i, j, m, n) in mapping],
            dtype=np.int64,
        )
        counts = np.asarray(list(mapping.values()), dtype=np.int64)
        return cls.from_code_counts(grid_size, codes, counts)

    def quad_array(self) -> np.ndarray:
        """The pair keys as an ``(entries, 4)`` int64 array, sorted."""
        g = self.grid_size
        quads = np.empty((len(self.codes), 4), dtype=np.int64)
        quads[:, 3] = self.codes % g
        quads[:, 2] = (self.codes // g) % g
        quads[:, 1] = (self.codes // (g * g)) % g
        quads[:, 0] = self.codes // (g * g * g)
        return quads

    def to_mapping(self) -> dict[CellPair, int]:
        return {
            (int(i), int(j), int(m), int(n)): int(count)
            for (i, j, m, n), count in zip(
                self.quad_array().tolist(), self.counts.tolist()
            )
        }

    def items(self) -> Iterator[tuple[CellPair, int]]:
        """Yield ``((i, j, m, n), count)`` in sorted key order."""
        yield from self.to_mapping().items()

    def __len__(self) -> int:
        return len(self.codes)

    def __bool__(self) -> bool:
        return len(self.codes) > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CoverageNumerators):
            return (
                self.grid_size == other.grid_size
                and np.array_equal(self.codes, other.codes)
                and np.array_equal(self.counts, other.counts)
            )
        if isinstance(other, Mapping):
            return self.to_mapping() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverageNumerators(g={self.grid_size}, entries={len(self.codes)})"

    def patch(
        self,
        gained_codes: np.ndarray,
        gained_counts: np.ndarray,
        lost_codes: np.ndarray,
        lost_counts: np.ndarray,
        owner: str = "",
    ) -> "CoverageNumerators":
        """A new instance with pair counts adjusted, in one vectorized
        pass; raises ``AssertionError`` when a loss would drive a pair
        negative (the delta does not describe counted pairs)."""
        codes = np.concatenate([self.codes, gained_codes, lost_codes])
        deltas = np.concatenate([self.counts, gained_counts, -np.asarray(lost_counts)])
        unique, inverse = np.unique(codes, return_inverse=True)
        sums = np.zeros(len(unique), dtype=np.int64)
        np.add.at(sums, inverse, deltas)
        if (sums < 0).any():
            bad = int(unique[int(np.argmax(sums < 0))])
            g = self.grid_size
            key = (
                bad // (g * g * g),
                (bad // (g * g)) % g,
                (bad // g) % g,
                bad % g,
            )
            raise AssertionError(
                f"coverage numerator underflow for {owner!r} at {key}"
            )
        keep = sums > 0
        return CoverageNumerators(self.grid_size, unique[keep], sums[keep])


class CoverageHistogram:
    """Sparse coverage fractions ``Cvg[i][j][m][n]``.

    Only non-zero entries are stored.  ``(i, j)`` is the covered cell,
    ``(m, n)`` the cell of the covering (ancestor) P-nodes, following the
    index order of the paper's definition.
    """

    def __init__(
        self,
        grid: GridSpec,
        entries: Optional[Mapping[CellPair, float]] = None,
        name: str = "",
    ) -> None:
        self.grid = grid
        self.name = name
        self._entry_map: Optional[dict[CellPair, float]] = {}
        self._arrays: Optional[tuple[np.ndarray, ...]] = None
        # Coverage histograms are replaced wholesale (never delta-
        # patched), so a construction-time epoch stamp identifies the
        # content for the incremental checkpointer.
        from repro.histograms.epoch import next_epoch

        self.version = next_epoch()
        if entries:
            for key, fraction in entries.items():
                self._set(key, float(fraction))

    @classmethod
    def _from_columns(
        cls,
        grid: GridSpec,
        columns: tuple[np.ndarray, ...],
        fractions: np.ndarray,
        name: str = "",
    ) -> "CoverageHistogram":
        """Columnar constructor: four aligned cell columns (sorted key
        order, validated) plus fractions in ``(0, 1 + 1e-9]``.  The
        entry dict is materialized lazily; estimator hot paths that only
        touch :meth:`entry_arrays` never pay for it."""
        size = grid.size
        i, j, m, n = columns
        for column in columns:
            if column.size and (
                int(column.min()) < 0 or int(column.max()) >= size
            ):
                raise ValueError(f"cell pair outside {size}x{size} grid")
        if ((j < i) | (n < m)).any():
            raise ValueError("cell pair has a below-diagonal cell")
        if fractions.size and (
            float(fractions.min()) <= 0.0 or float(fractions.max()) > 1.0 + 1e-9
        ):
            raise ValueError("coverage fraction outside (0, 1]")
        histogram = cls(grid, name=name)
        arrays = tuple(
            np.ascontiguousarray(c, dtype=np.int64) for c in columns
        ) + (np.minimum(np.ascontiguousarray(fractions, dtype=np.float64), 1.0),)
        for array in arrays:
            array.setflags(write=False)
        histogram._arrays = arrays
        histogram._entry_map = None
        return histogram

    @property
    def _entries(self) -> dict[CellPair, float]:
        if self._entry_map is None:
            i, j, m, n, fractions = self._arrays
            keys = np.stack([i, j, m, n], axis=1)
            self._entry_map = {
                tuple(key): fraction
                for key, fraction in zip(keys.tolist(), fractions.tolist())
            }
        return self._entry_map

    def _set(self, key: CellPair, fraction: float) -> None:
        i, j, m, n = key
        size = self.grid.size
        if not all(0 <= x < size for x in key):
            raise ValueError(f"cell pair {key} outside {size}x{size} grid")
        if j < i or n < m:
            raise ValueError(f"cell pair {key} has a below-diagonal cell")
        if not 0.0 <= fraction <= 1.0 + 1e-9:
            raise ValueError(f"coverage fraction {fraction} outside [0, 1]")
        if fraction == 0.0:
            self._entries.pop(key, None)
        else:
            self._entries[key] = min(fraction, 1.0)
        self._arrays = None

    # -- access ------------------------------------------------------------

    def coverage(self, i: int, j: int, m: int, n: int) -> float:
        """Fraction of cell ``(i, j)`` covered by P-nodes in ``(m, n)``."""
        return self._entries.get((i, j, m, n), 0.0)

    def entries(self) -> Iterator[tuple[CellPair, float]]:
        """Yield ``((i, j, m, n), fraction)`` for non-zero entries."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def entry_arrays(self) -> tuple[np.ndarray, ...]:
        """The non-zero entries as five aligned read-only arrays.

        Returns ``(covered_i, covered_j, covering_m, covering_n,
        fraction)`` in sorted key order -- the columnar counterpart of
        :meth:`entries`, cached so the estimators can evaluate the
        Fig. 10 sums as pure array expressions on every call.
        """
        if self._arrays is None:
            keys = sorted(self._entries)
            quads = np.asarray(keys, dtype=np.int64).reshape(len(keys), 4)
            fractions = np.asarray(
                [self._entries[k] for k in keys], dtype=np.float64
            )
            columns = tuple(np.ascontiguousarray(quads[:, c]) for c in range(4))
            arrays = columns + (fractions,)
            for array in arrays:
                array.setflags(write=False)
            self._arrays = arrays
        return self._arrays

    def entry_count(self) -> int:
        """Number of stored (non-zero) entries."""
        if self._entry_map is None:
            return len(self._arrays[4])
        return len(self._entry_map)

    def partial_entry_count(self, tolerance: float = 1e-12) -> int:
        """Entries strictly between 0 and 1 -- the Theorem 2 quantity."""
        if self._entry_map is None:
            fractions = self._arrays[4]
            return int(
                ((fractions > tolerance) & (fractions < 1.0 - tolerance)).sum()
            )
        return sum(
            1 for f in self._entry_map.values() if tolerance < f < 1.0 - tolerance
        )

    def covering_cells(self, i: int, j: int) -> Iterator[tuple[tuple[int, int], float]]:
        """All covering cells of covered cell ``(i, j)`` with fractions."""
        for (ci, cj, m, n), fraction in self._entries.items():
            if (ci, cj) == (i, j):
                yield (m, n), fraction

    def covered_cells(self, m: int, n: int) -> Iterator[tuple[tuple[int, int], float]]:
        """All covered cells for covering cell ``(m, n)`` with fractions."""
        for (i, j, cm, cn), fraction in self._entries.items():
            if (cm, cn) == (m, n):
                yield (i, j), fraction

    def scaled_copy(self, name: str = "") -> "CoverageHistogram":
        """A shallow value copy (used by the twig cascade when it
        re-weights coverage)."""
        return CoverageHistogram(self.grid, dict(self._entries), name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoverageHistogram({self.name or '?'}, g={self.grid.size}, "
            f"entries={len(self._entries)})"
        )


def coverage_from_numerators(
    numerators: "CoverageNumerators | Mapping[CellPair, int]",
    true_hist: PositionHistogram,
    name: str = "",
) -> CoverageHistogram:
    """Turn integer pair counts into a :class:`CoverageHistogram`.

    ``numerators[(i, j, m, n)]`` is the number of nodes in cell
    ``(i, j)`` having a P-ancestor in cell ``(m, n)``; denominators come
    from the TRUE histogram.  This is the single fraction-producing
    step, shared by the offline builder and the incremental maintenance
    path of the statistics service, so both produce bit-identical
    fractions from equal counts.

    For columnar :class:`CoverageNumerators` the whole derivation is
    one array pass (denominators gathered from the TRUE histogram's
    dense matrix, which holds the same float sums ``count(i, j)``
    returns); mappings take the per-entry reference path.
    """
    if isinstance(numerators, CoverageNumerators):
        g = true_hist.grid.size
        codes, counts = numerators.codes, numerators.counts
        covered = codes // (g * g)
        denominators = true_hist.dense().reshape(-1)[covered]
        keep = (denominators > 0) & (counts > 0)
        codes, counts, denominators = codes[keep], counts[keep], denominators[keep]
        fractions = counts / denominators
        columns = (
            codes // (g * g * g),
            (codes // (g * g)) % g,
            (codes // g) % g,
            codes % g,
        )
        return CoverageHistogram._from_columns(
            true_hist.grid, columns, fractions, name=name
        )
    return _coverage_from_numerators_items(numerators, true_hist, name=name)


def _coverage_from_numerators_items(
    numerators: "CoverageNumerators | Mapping[CellPair, int]",
    true_hist: PositionHistogram,
    name: str = "",
) -> CoverageHistogram:
    """Pre-vectorization per-entry derivation, kept as the bit-identity
    reference for the differential tests and the scale benchmark."""
    entries: dict[CellPair, float] = {}
    for (i, j, m, n), numerator in numerators.items():
        denominator = true_hist.count(i, j)
        if denominator > 0 and numerator > 0:
            entries[(i, j, m, n)] = numerator / denominator
    return CoverageHistogram(true_hist.grid, entries, name=name)


def build_coverage_numerators(
    tree: LabeledTree,
    node_indices: Iterable[int],
    grid: GridSpec,
    chunk_pairs: Optional[int] = None,
) -> CoverageNumerators:
    """Count, per ``(covered cell, covering cell)`` pair, the nodes
    covered by some predicate node -- the integer core of
    :func:`build_coverage_histogram`.

    Parameters
    ----------
    tree:
        The labeled database tree.
    node_indices:
        Pre-order indices of the nodes satisfying the predicate, in
        ascending order (as produced by the catalog).
    grid:
        The histogram grid.

    Algorithm
    ---------
    Columnar: each P-node's covered nodes are exactly the pre-order
    range of its subtree, so the ``(P-ancestor, node)`` pairs are
    enumerated as flat index arrays, reduced to distinct
    ``(node, ancestor-cell)`` combinations (a node covered by two
    P-ancestors in the same cell counts once, so the result is exact
    for overlap predicates too), and one more unique pass counts the
    numerators per ``(cell(v), cell(ancestor))``.  Ancestors are
    processed in bounded-size chunks: the transient pair arrays stay
    capped even when a deeply recursive predicate makes the total pair
    count ``O(N * depth)``, and because a chunk's ancestors only cover
    nodes after their own pre-order position, pairs for nodes before
    the next chunk's first ancestor are flushed into the (at most
    ``g^4``-entry) numerator table after every chunk, bounding the
    deduplicated running state as well.
    """
    from repro.query.structjoin import subtree_high
    from repro.utils.arrays import expand_ranges

    pnodes = np.asarray(
        node_indices if isinstance(node_indices, np.ndarray) else list(node_indices),
        dtype=np.int64,
    )
    if pnodes.size == 0:
        return CoverageNumerators.empty(grid.size)
    # The chunk-flush bound below relies on ascending pre-order indices;
    # the catalog always supplies them sorted, but the function is
    # public API and must stay order-insensitive.
    pnodes = np.sort(pnodes)

    # Per-node cell codes i * g + j, shared by both sides of the pair.
    g = grid.size
    cell_code = grid.buckets(tree.start) * g + grid.buckets(tree.end)

    lo = pnodes + 1
    hi = subtree_high(tree, pnodes)
    counts = hi - lo
    cum = np.cumsum(counts)
    total_pairs = int(cum[-1])
    if total_pairs == 0:
        return CoverageNumerators.empty(grid.size)

    # Chunk boundaries keep each expansion near the budget (a single
    # giant subtree may exceed it by itself, which is the floor anyway).
    # ``chunk_pairs`` overrides the budget, mainly so tests can force
    # the multi-chunk path on small inputs.
    budget = chunk_pairs if chunk_pairs else max(1 << 20, 4 * len(tree))
    splits = np.unique(
        np.searchsorted(cum, np.arange(budget, total_pairs, budget), side="left") + 1
    )
    edges = [0, *splits.tolist(), len(pnodes)]

    g2 = g * g
    anc_cell_code = cell_code[pnodes]
    numerators: dict[int, int] = {}
    pending = np.empty(0, dtype=np.int64)  # sorted distinct node*g2+cell

    def flush(codes: np.ndarray, node_bound: int) -> np.ndarray:
        """Count pairs of nodes below ``node_bound`` into ``numerators``."""
        split = int(np.searchsorted(codes, node_bound * g2))
        final = codes[:split]
        if final.size:
            keys, chunk_counts = np.unique(
                cell_code[final // g2] * g2 + final % g2, return_counts=True
            )
            for key, count in zip(keys.tolist(), chunk_counts.tolist()):
                numerators[key] = numerators.get(key, 0) + count
        return codes[split:]

    for s, e in zip(edges, edges[1:]):
        if s >= e:
            continue
        covered = expand_ranges(lo[s:e], hi[s:e])
        anc_codes = np.repeat(anc_cell_code[s:e], counts[s:e])
        # Distinct (covered node, ancestor cell) within the chunk;
        # union with pairs still awaiting later same-node ancestors.
        part = np.unique(covered * g2 + anc_codes)
        pending = part if pending.size == 0 else np.union1d(pending, part)
        if e < len(pnodes):
            # The remaining ancestors only cover nodes strictly after
            # their own pre-order index.
            pending = flush(pending, int(pnodes[e]) + 1)
    flush(pending, len(tree))

    return CoverageNumerators.from_code_counts(
        g,
        np.fromiter(numerators.keys(), dtype=np.int64, count=len(numerators)),
        np.fromiter(numerators.values(), dtype=np.int64, count=len(numerators)),
    )


def build_coverage_histogram(
    tree: LabeledTree,
    node_indices: Iterable[int],
    true_hist: PositionHistogram,
    name: str = "",
    chunk_pairs: Optional[int] = None,
) -> CoverageHistogram:
    """Build the coverage histogram of predicate nodes ``node_indices``.

    Composition of :func:`build_coverage_numerators` (exact integer pair
    counts) and :func:`coverage_from_numerators` (division by the TRUE
    histogram's denominators).
    """
    numerators = build_coverage_numerators(
        tree, node_indices, true_hist.grid, chunk_pairs=chunk_pairs
    )
    return coverage_from_numerators(numerators, true_hist, name=name)
