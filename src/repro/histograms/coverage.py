"""Coverage histograms for no-overlap predicates (paper Section 4.2).

For a predicate ``P`` with the no-overlap property (Definition 2), the
coverage histogram records, for each pair of grid cells, the fraction of
*all* database nodes in a covered cell that are descendants of some
P-node located in a covering cell::

    Cvg_P[i][j][m][n] = |{v in cell (i,j) : some P-ancestor of v in (m,n)}|
                        -----------------------------------------------
                        |{v in cell (i,j)}|

During estimation, the fraction observed over all nodes is assumed to
apply equally to the nodes of the descendant predicate ("the best one
can do is to determine what fraction of the total nodes in the cell are
descendants of a, and assume that the same fraction applies to d
nodes").

Theorem 2 of the paper: only ``O(g)`` cell pairs have *partial*
(non-zero, non-one) coverage, so the structure needs only linear
storage.  We expose :meth:`CoverageHistogram.partial_entry_count` so the
experiments can verify this directly.

Construction walks the mega-tree in pre-order with an explicit ancestor
stack, so it is exact for overlap predicates too (a node covered by two
P-ancestors in the same cell is counted once for that cell).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.histograms.grid import GridSpec
from repro.histograms.position import PositionHistogram
from repro.labeling.interval import LabeledTree

CellPair = tuple[int, int, int, int]  # (i, j, m, n): covered cell, covering cell


class CoverageHistogram:
    """Sparse coverage fractions ``Cvg[i][j][m][n]``.

    Only non-zero entries are stored.  ``(i, j)`` is the covered cell,
    ``(m, n)`` the cell of the covering (ancestor) P-nodes, following the
    index order of the paper's definition.
    """

    def __init__(
        self,
        grid: GridSpec,
        entries: Optional[Mapping[CellPair, float]] = None,
        name: str = "",
    ) -> None:
        self.grid = grid
        self.name = name
        self._entries: dict[CellPair, float] = {}
        if entries:
            for key, fraction in entries.items():
                self._set(key, float(fraction))

    def _set(self, key: CellPair, fraction: float) -> None:
        i, j, m, n = key
        size = self.grid.size
        if not all(0 <= x < size for x in key):
            raise ValueError(f"cell pair {key} outside {size}x{size} grid")
        if j < i or n < m:
            raise ValueError(f"cell pair {key} has a below-diagonal cell")
        if not 0.0 <= fraction <= 1.0 + 1e-9:
            raise ValueError(f"coverage fraction {fraction} outside [0, 1]")
        if fraction == 0.0:
            self._entries.pop(key, None)
        else:
            self._entries[key] = min(fraction, 1.0)

    # -- access ------------------------------------------------------------

    def coverage(self, i: int, j: int, m: int, n: int) -> float:
        """Fraction of cell ``(i, j)`` covered by P-nodes in ``(m, n)``."""
        return self._entries.get((i, j, m, n), 0.0)

    def entries(self) -> Iterator[tuple[CellPair, float]]:
        """Yield ``((i, j, m, n), fraction)`` for non-zero entries."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def entry_count(self) -> int:
        """Number of stored (non-zero) entries."""
        return len(self._entries)

    def partial_entry_count(self, tolerance: float = 1e-12) -> int:
        """Entries strictly between 0 and 1 -- the Theorem 2 quantity."""
        return sum(
            1 for f in self._entries.values() if tolerance < f < 1.0 - tolerance
        )

    def covering_cells(self, i: int, j: int) -> Iterator[tuple[tuple[int, int], float]]:
        """All covering cells of covered cell ``(i, j)`` with fractions."""
        for (ci, cj, m, n), fraction in self._entries.items():
            if (ci, cj) == (i, j):
                yield (m, n), fraction

    def covered_cells(self, m: int, n: int) -> Iterator[tuple[tuple[int, int], float]]:
        """All covered cells for covering cell ``(m, n)`` with fractions."""
        for (i, j, cm, cn), fraction in self._entries.items():
            if (cm, cn) == (m, n):
                yield (i, j), fraction

    def scaled_copy(self, name: str = "") -> "CoverageHistogram":
        """A shallow value copy (used by the twig cascade when it
        re-weights coverage)."""
        return CoverageHistogram(self.grid, dict(self._entries), name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoverageHistogram({self.name or '?'}, g={self.grid.size}, "
            f"entries={len(self._entries)})"
        )


def build_coverage_histogram(
    tree: LabeledTree,
    node_indices: Iterable[int],
    true_hist: PositionHistogram,
    name: str = "",
) -> CoverageHistogram:
    """Build the coverage histogram of predicate nodes ``node_indices``.

    Parameters
    ----------
    tree:
        The labeled database tree.
    node_indices:
        Pre-order indices of the nodes satisfying the predicate, in
        ascending order (as produced by the catalog).
    true_hist:
        The TRUE histogram over the same grid (denominators).

    Algorithm
    ---------
    One pre-order sweep with an explicit stack of active P-ancestors.
    For each element we collect the distinct grid cells of the P-nodes
    currently on the stack (at most one for a no-overlap predicate) and
    bump the numerator for each ``(cell(v), cell(ancestor))`` pair.
    Runs in ``O(N * depth)`` worst case, ``O(N)`` for no-overlap
    predicates.
    """
    grid = true_hist.grid
    predicate_set = set(int(x) for x in node_indices)
    numerators: dict[CellPair, int] = {}

    start = tree.start
    end = tree.end
    # Stack of (end_label, cell) for P-ancestors of the current node.
    stack: list[tuple[int, tuple[int, int]]] = []

    for v in range(len(tree)):
        v_start = int(start[v])
        while stack and stack[-1][0] < v_start:
            stack.pop()
        if stack:
            v_cell = grid.cell_of(v_start, int(end[v]))
            seen: set[tuple[int, int]] = set()
            for _, ancestor_cell in stack:
                if ancestor_cell in seen:
                    continue
                seen.add(ancestor_cell)
                key = (v_cell[0], v_cell[1], ancestor_cell[0], ancestor_cell[1])
                numerators[key] = numerators.get(key, 0) + 1
        if v in predicate_set:
            v_end = int(end[v])
            stack.append((v_end, grid.cell_of(v_start, v_end)))

    entries: dict[CellPair, float] = {}
    for (i, j, m, n), numerator in numerators.items():
        denominator = true_hist.count(i, j)
        if denominator > 0:
            entries[(i, j, m, n)] = numerator / denominator
    return CoverageHistogram(grid, entries, name=name)
