"""Immutable histogram pages and epoch bookkeeping.

The statistics engine versions every maintained histogram as an
**epoch**: a frozen :class:`HistogramPage` (dense-coded sparse numpy
arrays, never written after construction) plus a stack of small sealed
*delta overlays* (plain dicts that become immutable the moment they are
sealed).  Maintenance paths write only the live overlay; sealing is an
O(1) ownership handoff (the dict joins the stack and a fresh one starts)
and happens when a reader pins the current state.  When the stacked
overlays grow past a threshold they are merged into a *new* page -- the
old page is untouched, so every previously pinned epoch keeps reading
exactly the bytes it pinned.

Three pieces live here:

* :class:`HistogramPage` -- the frozen representation: sorted int64
  cell codes (``i * g + j``) with aligned float64 counts, stamped with
  a process-unique epoch id;
* :func:`next_epoch` -- the process-global epoch counter.  Every
  content change of a maintained histogram takes a fresh id, which is
  what the incremental checkpointer content-addresses archive members
  by (equal id => identical content, so the member can be referenced
  from the previous checkpoint instead of re-written);
* :class:`EpochRegistry` / :class:`EpochPin` -- explicit refcounts for
  pinned epochs.  A snapshot pins the epoch it reads; the registry
  keeps the pinned objects strongly referenced until the last pin
  drops, at which point sealed pages the live side has already merged
  past become unreachable and are freed.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Optional

import numpy as np

_EPOCH_LOCK = threading.Lock()
_EPOCH_NEXT = 1

#: Merge the sealed overlay stack into a fresh page once it holds more
#: layers than this...
LAYER_LIMIT = 4
#: ... or more total entries than ``max(MERGE_FLOOR, 2 * page cells)``.
MERGE_FLOOR = 64


def next_epoch() -> int:
    """A fresh process-unique epoch id (monotonically increasing)."""
    global _EPOCH_NEXT
    with _EPOCH_LOCK:
        value = _EPOCH_NEXT
        _EPOCH_NEXT += 1
        return value


def ensure_epoch_floor(epoch: int) -> None:
    """Advance the counter past ``epoch`` so it is never re-issued.

    Checkpoint loaders adopt *stored* epoch ids (stamped by a previous
    process) so an incremental checkpoint cut right after recovery can
    still reference unchanged members instead of re-archiving them.
    Adoption is only sound if no future content change can collide with
    an adopted id, hence the floor."""
    global _EPOCH_NEXT
    with _EPOCH_LOCK:
        if int(epoch) >= _EPOCH_NEXT:
            _EPOCH_NEXT = int(epoch) + 1


class HistogramPage:
    """Frozen sparse cell storage: sorted codes + aligned counts.

    ``codes[k] = i * g + j`` for cell ``(i, j)``; both arrays are marked
    read-only, so any accidental write raises instead of corrupting
    every epoch that shares the page.

    ``backing`` is the optional owner of the bytes the arrays view --
    an open :class:`~repro.storage.pagefile.PageFile` when the page was
    materialised straight out of a checkpoint mapping.  Holding it here
    keeps the mapping alive (and visible to retention) for exactly as
    long as any epoch still reads it: ``ascontiguousarray`` on an
    already-contiguous aligned int64/float64 mmap view returns the view
    itself, so such a page is genuinely zero-copy.
    """

    __slots__ = ("codes", "counts", "epoch", "backing", "__weakref__")

    def __init__(
        self,
        codes: np.ndarray,
        counts: np.ndarray,
        epoch: Optional[int] = None,
        backing: Optional[object] = None,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.float64)
        if codes.shape != counts.shape:
            raise ValueError("page codes and counts must be aligned")
        if codes.flags.writeable:
            codes.setflags(write=False)
        if counts.flags.writeable:
            counts.setflags(write=False)
        self.codes = codes
        self.counts = counts
        self.epoch = next_epoch() if epoch is None else epoch
        self.backing = backing

    def __len__(self) -> int:
        return len(self.codes)

    def get(self, code: int) -> float:
        """Count stored for ``code`` (0.0 when absent)."""
        slot = int(np.searchsorted(self.codes, code))
        if slot < len(self.codes) and int(self.codes[slot]) == code:
            return float(self.counts[slot])
        return 0.0

    @classmethod
    def empty(cls) -> "HistogramPage":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))

    @classmethod
    def from_mapping(cls, cells: Mapping[int, float]) -> "HistogramPage":
        """Page from a ``{code: count}`` mapping (zero counts dropped)."""
        codes = sorted(code for code, count in cells.items() if count != 0.0)
        return cls(
            np.asarray(codes, dtype=np.int64),
            np.asarray([cells[c] for c in codes], dtype=np.float64),
        )


def merge_page(
    page: HistogramPage, layers: Iterable[Mapping[int, float]]
) -> HistogramPage:
    """Seal ``layers`` of deltas into a fresh page (the old one is
    never touched -- pinned epochs keep reading it).

    The merged count of a cell is the page count plus the layer deltas
    in stack order -- the same additions a reader performs, so merging
    never changes an observable value.  Cells whose merged count is
    exactly zero are dropped, as the from-scratch builders never create
    them.

    One vectorized pass: the page arrays and each layer's entries are
    concatenated in stack order and accumulated with ``np.add.at``,
    which adds strictly in input order -- per cell that is the page
    count first, then the layer deltas oldest-to-newest, the exact
    float addition sequence of the dict walk (pinned by the
    differential test against :func:`_merge_page_dict`).
    """
    code_parts = [page.codes]
    count_parts = [page.counts]
    for layer in layers:
        if layer:
            code_parts.append(np.fromiter(layer.keys(), dtype=np.int64, count=len(layer)))
            count_parts.append(
                np.fromiter(layer.values(), dtype=np.float64, count=len(layer))
            )
    codes = np.concatenate(code_parts)
    if codes.size == 0:
        return HistogramPage.empty()
    counts = np.concatenate(count_parts)
    unique, inverse = np.unique(codes, return_inverse=True)
    merged = np.zeros(len(unique), dtype=np.float64)
    np.add.at(merged, inverse, counts)
    keep = merged != 0.0
    return HistogramPage(unique[keep], merged[keep])


def _merge_page_dict(
    page: HistogramPage, layers: Iterable[Mapping[int, float]]
) -> HistogramPage:
    """Pre-vectorization dict-walk merge, kept as the bit-identity
    reference for the differential tests and the scale benchmark."""
    merged: dict[int, float] = dict(
        zip(page.codes.tolist(), page.counts.tolist())
    )
    for layer in layers:
        for code, delta in layer.items():
            merged[code] = merged.get(code, 0.0) + delta
    return HistogramPage.from_mapping(merged)


class EpochPin:
    """One reader's hold on an epoch; release is idempotent.

    Idempotence is enforced under the registry's lock: two racing
    ``release()`` calls (a double ``close()``, a close racing the GC
    finalizer, or concurrent readers tearing down on different threads)
    decrement the epoch's refcount exactly once, so a pin can never free
    pages another reader still has pinned.
    """

    __slots__ = ("_registry", "epoch", "_released")

    def __init__(self, registry: "EpochRegistry", epoch: int) -> None:
        self._registry = registry
        self.epoch = epoch
        self._released = False

    def release(self) -> None:
        if self._registry._consume_release(self):
            self._registry._release(self.epoch)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass


class EpochRegistry:
    """Refcounts for pinned epochs.

    ``pin(epoch, objects)`` registers a reader: the registry keeps
    ``objects`` (typically the epoch's histogram views, which hold the
    sealed pages) strongly referenced until every pin of that epoch is
    released.  The owning service stays lean: a page the live side has
    merged past is freed the moment its last pinning snapshot drops.

    All bookkeeping runs under one lock: pins are taken and released
    from arbitrary reader threads (the network serve tier closes
    snapshots from its connection handlers), so both the refcount
    arithmetic and each pin's released-flag transition must be atomic.
    """

    def __init__(self) -> None:
        self._refs: dict[int, int] = {}
        self._held: dict[int, list] = {}
        self._lock = threading.Lock()

    def pin(self, epoch: int, objects: Iterable[object] = ()) -> EpochPin:
        with self._lock:
            self._refs[epoch] = self._refs.get(epoch, 0) + 1
            self._held.setdefault(epoch, []).extend(objects)
            return EpochPin(self, epoch)

    def _consume_release(self, pin: EpochPin) -> bool:
        """Atomically claim a pin's one release (False when already spent)."""
        with self._lock:
            if pin._released:
                return False
            pin._released = True
            return True

    def _release(self, epoch: int) -> None:
        with self._lock:
            count = self._refs.get(epoch, 0) - 1
            if count > 0:
                self._refs[epoch] = count
            else:
                self._refs.pop(epoch, None)
                self._held.pop(epoch, None)

    def refcount(self, epoch: int) -> int:
        with self._lock:
            return self._refs.get(epoch, 0)

    def live_epochs(self) -> list[int]:
        """Epochs still pinned by at least one reader, ascending."""
        with self._lock:
            return sorted(self._refs)
