"""Summary data structures: position and coverage histograms.

This package implements the paper's central data structures:

* :mod:`repro.histograms.grid` -- the ``g x g`` bucketisation of the
  (start, end) label space.
* :mod:`repro.histograms.position` -- :class:`PositionHistogram`
  (Section 3.1), the sparse 2-D histogram over node interval positions.
* :mod:`repro.histograms.truehist` -- the TRUE histogram and the algebra
  for synthesising compound-predicate histograms from component
  histograms under the in-cell independence assumption (Section 3.4).
* :mod:`repro.histograms.coverage` -- :class:`CoverageHistogram`
  (Section 4.2) for predicates with the no-overlap property.
* :mod:`repro.histograms.storage` -- the byte-accounting model used by
  the storage experiments (paper Figs. 11 and 12, Theorems 1 and 2) and
  binary (de)serialisation of histograms.
"""

from repro.histograms.adaptive import equi_depth_boundaries, equi_depth_grid
from repro.histograms.coverage import CoverageHistogram, build_coverage_histogram
from repro.histograms.grid import GridSpec
from repro.histograms.levels import LevelPositionHistogram, build_level_histogram
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.histograms.storage import (
    coverage_storage_bytes,
    load_histogram,
    position_storage_bytes,
    save_histogram,
)
from repro.histograms.truehist import (
    and_histograms,
    build_true_histogram,
    not_histogram,
    or_histograms,
    synthesize_histogram,
)

__all__ = [
    "CoverageHistogram",
    "GridSpec",
    "LevelPositionHistogram",
    "PositionHistogram",
    "and_histograms",
    "build_coverage_histogram",
    "build_level_histogram",
    "build_position_histogram",
    "build_true_histogram",
    "equi_depth_boundaries",
    "equi_depth_grid",
    "coverage_storage_bytes",
    "load_histogram",
    "not_histogram",
    "or_histograms",
    "position_storage_bytes",
    "save_histogram",
    "synthesize_histogram",
]
