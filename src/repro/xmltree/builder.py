"""Programmatic construction of XML trees.

The synthetic data generators (:mod:`repro.datasets`) build documents
directly as trees instead of emitting text and re-parsing it.  Two styles
are offered:

* :func:`element` / :func:`text` -- small constructors for literal trees
  in tests and examples.
* :class:`TreeBuilder` -- a push/pop builder mirroring SAX-style
  generation, convenient when a generator walks a DTD content model.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.xmltree.tree import Document, Element, Node, Text

Child = Union[Node, str]


def text(value: str) -> Text:
    """Create a detached text node."""
    return Text(value)


def element(
    tag: str,
    *children: Child,
    attributes: Optional[dict[str, str]] = None,
) -> Element:
    """Create an element with the given children.

    String children become text nodes, e.g.::

        element("faculty", element("name", "Jagadish"), element("TA"))
    """
    node = Element(tag, attributes)
    for child in children:
        if isinstance(child, str):
            node.append_text(child)
        else:
            node.append(child)
    return node


class TreeBuilder:
    """Incrementally build a :class:`Document` with start/end/text calls.

    Example
    -------
    ::

        builder = TreeBuilder()
        builder.start("department")
        builder.start("faculty")
        builder.leaf("name", "Patel")
        builder.end()          # faculty
        builder.end()          # department
        doc = builder.finish()
    """

    def __init__(self) -> None:
        self._document = Document()
        self._stack: list[Element] = []
        self._finished = False

    def start(self, tag: str, attributes: Optional[dict[str, str]] = None) -> Element:
        """Open a new element as a child of the current element."""
        self._check_open()
        node = Element(tag, attributes)
        if self._stack:
            self._stack[-1].append(node)
        else:
            if self._document.children:
                raise ValueError("document already has a root element")
            self._document.append(node)
        self._stack.append(node)
        return node

    def end(self) -> None:
        """Close the most recently opened element."""
        self._check_open()
        if not self._stack:
            raise ValueError("end() with no open element")
        self._stack.pop()

    def text(self, value: str) -> None:
        """Append character data to the current element."""
        self._check_open()
        if not self._stack:
            raise ValueError("text outside of any element")
        self._stack[-1].append_text(value)

    def leaf(self, tag: str, value: Optional[str] = None) -> None:
        """Append ``<tag>value</tag>`` (or an empty element) and close it."""
        self.start(tag)
        if value is not None:
            self.text(value)
        self.end()

    def finish(self) -> Document:
        """Close the builder and return the document."""
        self._check_open()
        if self._stack:
            raise ValueError(f"unclosed element <{self._stack[-1].tag}>")
        if not self._document.children:
            raise ValueError("no root element was built")
        self._finished = True
        return self._document

    def _check_open(self) -> None:
        if self._finished:
            raise ValueError("builder already finished")
