"""Hand-written streaming tokenizer for the XML subset used in this repo.

Supports the constructs that occur in the paper's data sets (DBLP,
Shakespeare, XMark, IBM-generator output): start/end/empty element tags
with attributes, character data with entity and character references,
comments, CDATA sections, processing instructions, XML declarations, and
DOCTYPE declarations (skipped, including an internal subset).

It does *not* implement full XML 1.0 (no namespaces-aware validation, no
external entities) -- the goal is a dependency-free, well-tested substrate,
not a standards-complete parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator

from repro.xmltree.errors import XMLSyntaxError

_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_RE = re.compile(r"[A-Za-z_:][-A-Za-z0-9._:]*")
_WHITESPACE = " \t\r\n"

_BUILTIN_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class TokenType(Enum):
    """Kinds of tokens the tokenizer emits."""

    START_TAG = auto()      # <tag attr="v"> ; value=tag, attrs filled
    END_TAG = auto()        # </tag>
    EMPTY_TAG = auto()      # <tag/>
    TEXT = auto()           # character data (entities resolved)
    COMMENT = auto()        # <!-- ... -->
    PI = auto()             # <?target data?>
    DOCTYPE = auto()        # <!DOCTYPE ...> (raw content in value)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type: the :class:`TokenType`.
    value: tag name for tags, text for TEXT/COMMENT/PI/DOCTYPE.
    attrs: attribute mapping for START_TAG / EMPTY_TAG, else empty.
    offset: character offset of the token start in the input.
    """

    type: TokenType
    value: str
    attrs: tuple[tuple[str, str], ...]
    offset: int

    def attributes(self) -> dict[str, str]:
        """Attribute pairs as a fresh dict."""
        return dict(self.attrs)


def resolve_references(data: str, offset: int = 0) -> str:
    """Resolve ``&name;`` and ``&#NN;`` / ``&#xHH;`` references in text."""
    if "&" not in data:
        return data
    out: list[str] = []
    i = 0
    n = len(data)
    while i < n:
        ch = data[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = data.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", offset + i)
        body = data[i + 1 : end]
        if not body:
            raise XMLSyntaxError("empty entity reference", offset + i)
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{body};", offset + i) from exc
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:], 10)))
            except ValueError as exc:
                raise XMLSyntaxError(f"bad character reference &{body};", offset + i) from exc
        elif body in _BUILTIN_ENTITIES:
            out.append(_BUILTIN_ENTITIES[body])
        else:
            # Unknown entity: keep it literally; real-world DBLP uses many
            # latin entities and estimation only needs stable text values.
            out.append(f"&{body};")
        i = end + 1
    return "".join(out)


class _Cursor:
    """Mutable scan position over the input string."""

    __slots__ = ("data", "pos")

    def __init__(self, data: str) -> None:
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def peek(self) -> str:
        return self.data[self.pos] if self.pos < len(self.data) else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        data, pos, n = self.data, self.pos, len(self.data)
        while pos < n and data[pos] in _WHITESPACE:
            pos += 1
        self.pos = pos

    def expect(self, literal: str) -> None:
        if not self.data.startswith(literal, self.pos):
            raise XMLSyntaxError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def read_name(self) -> str:
        match = _NAME_RE.match(self.data, self.pos)
        if match is None:
            raise XMLSyntaxError("expected an XML name", self.pos)
        self.pos = match.end()
        return match.group()

    def read_until(self, literal: str, error: str) -> str:
        end = self.data.find(literal, self.pos)
        if end == -1:
            raise XMLSyntaxError(error, self.pos)
        chunk = self.data[self.pos : end]
        self.pos = end + len(literal)
        return chunk


def _read_attributes(cur: _Cursor) -> tuple[tuple[str, str], ...]:
    """Read zero or more ``name="value"`` pairs up to ``>`` or ``/>``."""
    attrs: list[tuple[str, str]] = []
    while True:
        cur.skip_whitespace()
        ch = cur.peek()
        if ch in (">", "/") or ch == "":
            return tuple(attrs)
        if not _NAME_START.match(ch):
            raise XMLSyntaxError(f"unexpected character {ch!r} in tag", cur.pos)
        name = cur.read_name()
        cur.skip_whitespace()
        cur.expect("=")
        cur.skip_whitespace()
        quote = cur.peek()
        if quote not in ("'", '"'):
            raise XMLSyntaxError("attribute value must be quoted", cur.pos)
        cur.advance()
        start = cur.pos
        raw = cur.read_until(quote, "unterminated attribute value")
        attrs.append((name, resolve_references(raw, start)))


def _read_doctype(cur: _Cursor) -> str:
    """Consume a DOCTYPE declaration, including an internal subset."""
    start = cur.pos
    depth = 0
    data = cur.data
    n = len(data)
    while cur.pos < n:
        ch = data[cur.pos]
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            body = data[start : cur.pos]
            cur.advance()
            return body
        cur.advance()
    raise XMLSyntaxError("unterminated DOCTYPE declaration", start)


def tokenize(data: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for the XML text ``data``.

    Raises :class:`XMLSyntaxError` on lexical problems.  Well-formedness
    of the tag structure is checked by the parser, not here.
    """
    cur = _Cursor(data)
    while not cur.eof():
        if cur.peek() != "<":
            start = cur.pos
            raw = ""
            end = data.find("<", cur.pos)
            if end == -1:
                raw = data[cur.pos :]
                cur.pos = len(data)
            else:
                raw = data[cur.pos : end]
                cur.pos = end
            yield Token(TokenType.TEXT, resolve_references(raw, start), (), start)
            continue

        start = cur.pos
        if data.startswith("<!--", cur.pos):
            cur.advance(4)
            body = cur.read_until("-->", "unterminated comment")
            yield Token(TokenType.COMMENT, body, (), start)
        elif data.startswith("<![CDATA[", cur.pos):
            cur.advance(9)
            body = cur.read_until("]]>", "unterminated CDATA section")
            yield Token(TokenType.TEXT, body, (), start)
        elif data.startswith("<!DOCTYPE", cur.pos):
            cur.advance(len("<!DOCTYPE"))
            body = _read_doctype(cur)
            yield Token(TokenType.DOCTYPE, body.strip(), (), start)
        elif data.startswith("<?", cur.pos):
            cur.advance(2)
            body = cur.read_until("?>", "unterminated processing instruction")
            yield Token(TokenType.PI, body, (), start)
        elif data.startswith("</", cur.pos):
            cur.advance(2)
            name = cur.read_name()
            cur.skip_whitespace()
            cur.expect(">")
            yield Token(TokenType.END_TAG, name, (), start)
        else:
            cur.advance(1)
            name = cur.read_name()
            attrs = _read_attributes(cur)
            cur.skip_whitespace()
            if data.startswith("/>", cur.pos):
                cur.advance(2)
                yield Token(TokenType.EMPTY_TAG, name, attrs, start)
            else:
                cur.expect(">")
                yield Token(TokenType.START_TAG, name, attrs, start)
