"""Event-driven XML parser building :class:`~repro.xmltree.tree.Document`.

The parser consumes the token stream of :mod:`repro.xmltree.tokenizer`
and enforces well-formedness: balanced tags, a single root element, and
no character data outside the root.  Whitespace-only text between
elements is dropped by default (the paper's data sets are data-centric,
so indentation whitespace is noise for cardinality estimation); pass
``keep_whitespace=True`` to retain it.
"""

from __future__ import annotations

from repro.xmltree.errors import XMLWellFormednessError
from repro.xmltree.tokenizer import TokenType, tokenize
from repro.xmltree.tree import Document, Element


def parse_document(data: str, keep_whitespace: bool = False) -> Document:
    """Parse XML text into a :class:`Document`.

    Parameters
    ----------
    data:
        The XML text.
    keep_whitespace:
        When False (default), text nodes that are entirely whitespace are
        discarded.

    Raises
    ------
    XMLSyntaxError
        On lexical errors (from the tokenizer).
    XMLWellFormednessError
        On structural errors (mismatched tags, multiple roots, ...).
    """
    document = Document()
    stack: list[Element] = []
    saw_root = False

    for token in tokenize(data):
        if token.type in (TokenType.COMMENT, TokenType.PI, TokenType.DOCTYPE):
            continue
        if token.type == TokenType.TEXT:
            if not token.value.strip():
                if keep_whitespace and stack:
                    stack[-1].append_text(token.value)
                continue
            if not stack:
                raise XMLWellFormednessError(
                    f"character data outside the root element: {token.value[:40]!r}"
                )
            stack[-1].append_text(token.value)
        elif token.type in (TokenType.START_TAG, TokenType.EMPTY_TAG):
            element = Element(token.value, token.attributes())
            if stack:
                stack[-1].append(element)
            else:
                if saw_root:
                    raise XMLWellFormednessError(
                        f"second root element <{token.value}>"
                    )
                document.append(element)
                saw_root = True
            if token.type == TokenType.START_TAG:
                stack.append(element)
        elif token.type == TokenType.END_TAG:
            if not stack:
                raise XMLWellFormednessError(
                    f"close tag </{token.value}> with no open element"
                )
            open_element = stack.pop()
            if open_element.tag != token.value:
                raise XMLWellFormednessError(
                    f"close tag </{token.value}> does not match <{open_element.tag}>"
                )

    if stack:
        raise XMLWellFormednessError(
            f"unclosed element <{stack[-1].tag}> at end of input"
        )
    if not saw_root:
        raise XMLWellFormednessError("document has no root element")
    return document


def parse_fragment(data: str, keep_whitespace: bool = False) -> Element:
    """Parse an XML fragment that has a single element root.

    A convenience wrapper over :func:`parse_document` returning the root
    element directly; handy in tests.
    """
    return parse_document(data, keep_whitespace=keep_whitespace).root_element
