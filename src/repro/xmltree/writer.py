"""Serialisation of tree nodes back to XML text.

Used for round-trip testing of the parser and for persisting generated
data sets to disk so experiments can be re-run on identical inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.xmltree.tree import Document, Element, Node, Text

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, escaped in _ATTR_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def write_node(node: Node, indent: Optional[int] = None) -> str:
    """Serialise a single node (and its subtree) to XML text.

    Parameters
    ----------
    node:
        An :class:`Element` or :class:`Text` node.
    indent:
        When given, pretty-print with this many spaces per level.
        Pretty-printing inserts whitespace, so only use it for documents
        where whitespace is insignificant.
    """
    parts: list[str] = []
    _write(node, parts, indent, 0)
    return "".join(parts)


def write_document(document: Document, indent: Optional[int] = None) -> str:
    """Serialise a full document, with an XML declaration."""
    parts: list[str] = ['<?xml version="1.0" encoding="UTF-8"?>']
    if indent is not None:
        parts.append("\n")
    for child in document.children:
        _write(child, parts, indent, 0)
    if indent is not None and parts[-1] != "\n":
        parts.append("\n")
    return "".join(parts)


def _write(node: Node, parts: list[str], indent: Optional[int], level: int) -> None:
    pad = "" if indent is None else " " * (indent * level)
    newline = "" if indent is None else "\n"
    if isinstance(node, Text):
        parts.append(pad + escape_text(node.value) + newline)
        return
    if not isinstance(node, Element):
        return
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"{pad}<{node.tag}{attrs}/>{newline}")
        return
    only_text = all(isinstance(c, Text) for c in node.children)
    if only_text:
        content = "".join(escape_text(c.value) for c in node.children if isinstance(c, Text))
        parts.append(f"{pad}<{node.tag}{attrs}>{content}</{node.tag}>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>{newline}")
    for child in node.children:
        _write(child, parts, indent, level + 1)
    parts.append(f"{pad}</{node.tag}>{newline}")
