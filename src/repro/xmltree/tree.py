"""Node-labeled tree model for XML documents.

The paper (Section 2) models the database as a large rooted node-labeled
tree ``T = (V_T, E_T)``.  This module provides that tree: a small class
hierarchy with :class:`Element` and :class:`Text` nodes under a
:class:`Document` root.

Design notes
------------
* Nodes know their parent, so ancestor tests and root-to-node paths are
  cheap; children are stored in document order.
* The classes are deliberately plain (no ``__slots__``-breaking dynamic
  attributes, no metaclasses) -- "explicit is better than implicit".
* Interval labels (start/end positions, Section 3.1 of the paper) are
  *not* stored here; :mod:`repro.labeling` computes them into a separate
  immutable table, keeping the data model independent from any particular
  numbering scheme.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional


class Node:
    """Common base for all tree nodes.

    Attributes
    ----------
    parent:
        The owning :class:`Element` or :class:`Document`, or ``None`` for
        a detached node.
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Node] = None

    # -- navigation ------------------------------------------------------

    def ancestors(self) -> Iterator["Node"]:
        """Yield the proper ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "Node") -> bool:
        """Return True if ``self`` is a proper ancestor of ``other``."""
        return any(anc is self for anc in other.ancestors())

    def root(self) -> "Node":
        """Return the topmost node reachable through parent links."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Number of proper ancestors (the document root has depth 0)."""
        return sum(1 for _ in self.ancestors())


class Text(Node):
    """A text node holding character data."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.value if len(self.value) <= 24 else self.value[:21] + "..."
        return f"Text({preview!r})"


class Element(Node):
    """An XML element: a tag, attributes, and ordered children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag: str, attributes: Optional[dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes) if attributes else {}
        self.children: list[Node] = []

    # -- mutation --------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, value: str) -> Text:
        """Convenience: create and attach a :class:`Text` child."""
        node = Text(value)
        self.append(node)
        return node

    # -- navigation ------------------------------------------------------

    def child_elements(self) -> Iterator["Element"]:
        """Yield the element children, in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def iter(self) -> Iterator["Element"]:
        """Yield this element and every descendant element, pre-order."""
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.child_elements())))

    def descendants(self) -> Iterator["Element"]:
        """Yield every proper descendant element, pre-order."""
        first = True
        for node in self.iter():
            if first:
                first = False
                continue
            yield node

    def find_all(self, tag: str) -> Iterator["Element"]:
        """Yield descendant-or-self elements with the given tag."""
        for node in self.iter():
            if node.tag == tag:
                yield node

    def text_content(self) -> str:
        """Concatenated character data of all descendant text nodes."""
        parts: list[str] = []
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                parts.append(node.value)
            elif isinstance(node, Element):
                stack.extend(reversed(node.children))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


class Document(Node):
    """A parsed XML document: a container around the single root element.

    For the mega-tree construction of the paper (Section 3.1, merging all
    documents under a dummy root), see
    :func:`repro.labeling.interval.label_forest`, which accepts several
    documents at once.
    """

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    @property
    def root_element(self) -> Element:
        """The document element; raises ValueError if there is none."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def append(self, child: Node) -> Node:
        """Attach a top-level child (root element, comments-as-text)."""
        child.parent = self
        self.children.append(child)
        return child

    def iter_elements(self) -> Iterator[Element]:
        """Yield every element of the document, pre-order."""
        yield from self.root_element.iter()

    def count_nodes(self) -> int:
        """Total number of element nodes in the document."""
        return sum(1 for _ in self.iter_elements())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            tag = self.root_element.tag
        except ValueError:
            tag = "<empty>"
        return f"Document(root={tag!r})"


def walk(
    node: Node,
    enter: Callable[[Element], None],
    leave: Optional[Callable[[Element], None]] = None,
) -> None:
    """Depth-first walk calling ``enter`` (and ``leave``) on each element.

    The walk is iterative so arbitrarily deep synthetic documents (the
    paper's recursive manager DTD produces deep trees) never hit Python's
    recursion limit.
    """
    if isinstance(node, Document):
        roots = [c for c in node.children if isinstance(c, Element)]
    elif isinstance(node, Element):
        roots = [node]
    else:
        return
    # Stack entries are (element, visited_flag).
    stack: list[tuple[Element, bool]] = [(r, False) for r in reversed(roots)]
    while stack:
        element, visited = stack.pop()
        if visited:
            if leave is not None:
                leave(element)
            continue
        enter(element)
        stack.append((element, True))
        for child in reversed(list(element.child_elements())):
            stack.append((child, False))
