"""Exception types raised by the XML substrate."""


class XMLError(Exception):
    """Base class for all XML substrate errors."""


class XMLSyntaxError(XMLError):
    """Raised when the tokenizer meets text that is not lexically XML.

    Carries the character ``offset`` into the input at which the problem
    was detected, so callers can produce useful diagnostics.
    """

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (at offset {offset})")
        self.offset = offset


class XMLWellFormednessError(XMLError):
    """Raised when a token stream is lexically fine but not a tree.

    Examples: mismatched close tag, more than one root element, text at
    the document top level, or a dangling open element at end of input.
    """
