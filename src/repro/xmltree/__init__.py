"""Minimal, self-contained XML substrate.

The paper models an XML database as a rooted node-labeled tree.  This
package provides everything the rest of the library needs to go from XML
text to such a tree and back, without depending on any external XML
library:

* :mod:`repro.xmltree.tree` -- the node model (:class:`Element`,
  :class:`Text`, :class:`Document`) with parent/child navigation and
  traversal helpers.
* :mod:`repro.xmltree.tokenizer` -- a hand-written streaming tokenizer for
  the XML subset the paper's data sets use (elements, attributes, text,
  comments, CDATA, processing instructions, character references).
* :mod:`repro.xmltree.parser` -- an event-driven parser building
  :class:`Document` trees from tokens, with well-formedness checks.
* :mod:`repro.xmltree.writer` -- serialisation back to XML text (used for
  round-trip tests and for persisting generated data sets).
* :mod:`repro.xmltree.builder` -- a programmatic tree builder used by the
  synthetic data generators.
"""

from repro.xmltree.builder import TreeBuilder, element, text
from repro.xmltree.errors import XMLSyntaxError, XMLWellFormednessError
from repro.xmltree.parser import parse_document, parse_fragment
from repro.xmltree.tokenizer import Token, TokenType, tokenize
from repro.xmltree.tree import Document, Element, Node, Text
from repro.xmltree.writer import write_document, write_node

__all__ = [
    "Document",
    "Element",
    "Node",
    "Text",
    "Token",
    "TokenType",
    "TreeBuilder",
    "XMLSyntaxError",
    "XMLWellFormednessError",
    "element",
    "parse_document",
    "parse_fragment",
    "text",
    "tokenize",
    "write_document",
    "write_node",
]
