"""Deterministic fault injection for the durability and serve tiers.

Every hardening suite before this module injected faults ad hoc --
truncating log files byte by byte, monkeypatching ``os.fsync`` -- which
covers crash *recovery* but not the runtime failure paths: what the
live service does the moment an ``fsync`` raises ``EIO``, a write
stops halfway through a record, or a client vanishes mid-frame.

:class:`FaultPlan` is the one pluggable injection point for all of
them.  A plan is a list of :class:`FaultRule` schedules over named
**fault points** -- ``"wal.fsync"``, ``"wal.write"``, ``"ckpt.write"``,
``"ckpt.rename"``, ``"dir.fsync"``, ``"net.send"``, ``"net.recv"`` --
that the write-ahead log, the checkpoint writer, and the TCP server
consult before the real operation.  A rule fires

* on the **Nth hit** of its point (``nth=3`` = the third fsync), or
* with **probability p**, drawn from the plan's seeded RNG, optionally
  only ``after_byte`` bytes have passed through the point,

and every firing is appended to :attr:`FaultPlan.fired`, so a chaos
run is fully replayable: same rules + same seed + same workload =
the same faults at the same operations.

Storage actions raise :class:`OSError` with a configurable ``errno``
(``EIO`` by default; use ``errno.ENOSPC`` for disk-full schedules).
``action="torn"`` additionally writes a prefix of the buffer before
raising, simulating a short write that leaves a torn record on disk
for recovery to truncate.  Network actions (``disconnect``, ``stall``,
``delay``, ``torn``) are returned to the server's connection handler,
which enacts them on the socket.

The plan is thread-safe: the WAL writer thread, the asyncio server
thread, and checkpoint callers may all consult it concurrently; the
hit counters advance under one lock, so "the Nth fsync" is the Nth
fsync in wall-clock order across all threads.
"""

from __future__ import annotations

import errno as _errno
import random
import threading
from dataclasses import dataclass, field
from typing import Optional


#: Storage fault points (consulted by :mod:`repro.service.wal`).
WAL_WRITE = "wal.write"      # appending a record frame to the log
WAL_FSYNC = "wal.fsync"      # fsync of the log file
CKPT_WRITE = "ckpt.write"    # writing a checkpoint/compaction temp file
CKPT_FSYNC = "ckpt.fsync"    # fsync of a checkpoint temp file
CKPT_RENAME = "ckpt.rename"  # atomic rename of a temp file into place
DIR_FSYNC = "dir.fsync"      # fsync of the durable directory entry
#: Network fault points (consulted by the TCP server).
NET_SEND = "net.send"        # before writing a response frame
NET_RECV = "net.recv"        # after reading a request frame

STORAGE_POINTS = (WAL_WRITE, WAL_FSYNC, CKPT_WRITE, CKPT_FSYNC, CKPT_RENAME, DIR_FSYNC)
NETWORK_POINTS = (NET_SEND, NET_RECV)

_ACTIONS = ("error", "torn", "disconnect", "stall", "delay")


@dataclass
class FaultRule:
    """One scheduled fault at one fault point.

    Exactly one trigger applies: ``nth`` (fire on the Nth hit of the
    point, 1-based) when set, else ``probability`` (an independent
    seeded draw per hit).  ``after_byte`` gates either trigger until
    that many bytes have passed through the point.  ``count`` bounds
    how many times the rule fires in total (``None`` = every time the
    trigger matches -- a persistent outage).
    """

    point: str
    nth: Optional[int] = None
    probability: float = 0.0
    after_byte: int = 0
    count: Optional[int] = 1
    action: str = "error"
    errno: int = _errno.EIO
    torn_fraction: float = 0.5
    delay: float = 0.0
    message: str = "injected fault"
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 <= self.torn_fraction <= 1.0:
            raise ValueError(
                f"torn fraction must be in [0, 1], got {self.torn_fraction}"
            )

    def to_error(self) -> OSError:
        return OSError(self.errno, f"{self.message} [{self.point}]")


@dataclass
class FiredFault:
    """One rule firing: the replayable chaos-run trace entry."""

    point: str
    hit: int
    action: str
    nbytes: int


class FaultPlan:
    """A seeded, deterministic schedule of faults over named points.

    Construct with the rules and a seed, hand it to
    :class:`~repro.service.wal.WriteAheadLog` (storage points) and/or
    :class:`~repro.service.server.EstimationServer` (network points),
    and drive the workload; :attr:`fired` records what fired where.
    ``clear()`` resets counters so one plan object can be re-armed
    between runs (the RNG re-seeds too, keeping replays identical).
    """

    def __init__(self, rules: Optional[list[FaultRule]] = None, seed: int = 0) -> None:
        self.rules = list(rules or [])
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._bytes: dict[str, int] = {}
        self.fired: list[FiredFault] = []

    # -- schedule construction helpers --------------------------------------

    @classmethod
    def failing(cls, point: str, nth: int = 1, *, count: Optional[int] = 1,
                errno: int = _errno.EIO, seed: int = 0) -> "FaultPlan":
        """The common one-rule plan: fail the Nth operation at a point."""
        return cls([FaultRule(point, nth=nth, count=count, errno=errno)], seed=seed)

    @classmethod
    def outage(cls, *points: str, after: int = 0, seed: int = 0) -> "FaultPlan":
        """A persistent outage: from hit ``after + 1`` on, every
        operation at each point fails (the sticky-degradation drill)."""
        return cls(
            [FaultRule(p, nth=after + 1, count=None) for p in points], seed=seed
        )

    def clear(self) -> None:
        """Reset hit counters, rule budgets, and the RNG (re-arm)."""
        with self._lock:
            self._hits.clear()
            self._bytes.clear()
            self.fired.clear()
            self._rng = random.Random(self.seed)
            for rule in self.rules:
                rule.fired = 0

    def hits(self, point: str) -> int:
        with self._lock:
            return self._hits.get(point, 0)

    # -- firing --------------------------------------------------------------

    def check(self, point: str, nbytes: int = 0) -> Optional[FaultRule]:
        """Record one hit at ``point``; return the rule that fires, if any.

        Deterministic: the decision depends only on the rules, the
        seed, and the sequence of ``check`` calls so far.
        """
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            seen = self._bytes.get(point, 0)
            self._bytes[point] = seen + max(0, int(nbytes))
            for rule in self.rules:
                if rule.point != point:
                    continue
                if rule.count is not None and rule.fired >= rule.count:
                    continue
                if seen < rule.after_byte:
                    continue
                if rule.nth is not None:
                    if hit < rule.nth:
                        continue
                    # count=1 fires exactly on the Nth hit; an unbounded
                    # (or multi-shot) rule keeps firing from the Nth on.
                    if rule.count == 1 and hit != rule.nth:
                        continue
                elif not (
                    rule.probability > 0.0
                    and self._rng.random() < rule.probability
                ):
                    continue
                rule.fired += 1
                self.fired.append(FiredFault(point, hit, rule.action, nbytes))
                return rule
            return None

    def fire(self, point: str, nbytes: int = 0) -> None:
        """Raise the scheduled :class:`OSError` at a storage point.

        ``delay``/``stall`` actions sleep instead of raising, modelling
        a slow device rather than a failed one.
        """
        rule = self.check(point, nbytes)
        if rule is None:
            return
        if rule.action in ("delay", "stall"):
            if rule.delay > 0:
                import time

                time.sleep(rule.delay)
            return
        raise rule.to_error()

    def intercept_write(
        self, point: str, data: bytes
    ) -> tuple[bytes, Optional[OSError]]:
        """Mediate one buffer write at a storage point.

        Returns ``(prefix, error)``: the caller writes ``prefix`` (the
        whole buffer when no rule fires), then raises ``error`` if it
        is not ``None``.  ``action="torn"`` yields a strict prefix --
        the short/torn write that leaves a checksummed-invalid tail on
        disk; ``action="error"`` yields no bytes at all.
        """
        rule = self.check(point, len(data))
        if rule is None:
            return data, None
        if rule.action == "torn":
            cut = int(len(data) * rule.torn_fraction)
            cut = max(1, min(len(data) - 1, cut)) if len(data) > 1 else 0
            return data[:cut], rule.to_error()
        if rule.action in ("delay", "stall"):
            if rule.delay > 0:
                import time

                time.sleep(rule.delay)
            return data, None
        return b"", rule.to_error()

    def network(self, point: str, nbytes: int = 0) -> Optional[FaultRule]:
        """The fired rule at a network point (``None`` = proceed).

        The connection handler enacts the action: ``disconnect`` closes
        the socket, ``torn`` closes it mid-frame, ``stall``/``delay``
        sleep before proceeding, ``error`` maps to ``disconnect``.
        """
        return self.check(point, nbytes)


def fire(plan: Optional[FaultPlan], point: str, nbytes: int = 0) -> None:
    """``plan.fire`` that tolerates ``plan=None`` (no injection)."""
    if plan is not None:
        plan.fire(point, nbytes)


__all__ = [
    "CKPT_FSYNC",
    "CKPT_RENAME",
    "CKPT_WRITE",
    "DIR_FSYNC",
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "NET_RECV",
    "NET_SEND",
    "NETWORK_POINTS",
    "STORAGE_POINTS",
    "WAL_FSYNC",
    "WAL_WRITE",
    "fire",
]
