"""Log-shipping replication: primaries stream, followers replay.

The WAL built for crash recovery is already a replication log: every
committed batch is one self-contained, checksummed record that replays
deterministically.  This module adds the three pieces that turn it
into read scale-out:

* :class:`ReplicationHub` -- the **primary side**, owned by the serve
  tier.  Wraps a :class:`~repro.service.wal.WalTailer` over the live
  log and a commit notifier hooked into the service, so subscriber
  streams wake on commit instead of polling.  Also answers the two
  bootstrap requests: ``repl.manifest`` (which checkpoint to copy, and
  the transitive delta/ref chain of files it needs) and ``repl.fetch``
  (chunked file reads for followers without filesystem access to the
  primary's directory).

* :func:`bootstrap_follower` -- the **catch-up protocol**.  A fresh
  follower directory receives the newest complete checkpoint (copied
  directly when the primary's directory is readable locally, fetched
  in chunks otherwise) and a seed log holding only a ``base``
  watermark record -- exactly the shape :func:`~repro.service.wal.
  compact` leaves, so ordinary ``open_durable`` recovery loads the
  checkpoint and resumes at its LSN.  A directory that already holds
  durable state skips the transfer: recovery *is* the resume path.

* :class:`Follower` -- the **apply loop**.  Subscribes over the
  primary's ordinary TCP front-end (``repl.subscribe from_lsn=N``),
  appends each shipped record payload verbatim to its own WAL, and
  applies it through :func:`~repro.service.wal.apply_logged_batch` --
  the *same function crash recovery runs*, which is why a follower
  paused at LSN N is bit-identical to ``open_durable`` recovery of a
  log truncated at N.  Reconnects resume from the follower's own
  committed LSN; a resume point that fell below the primary's
  compaction watermark surfaces as ``stale_lsn`` (re-bootstrap; see
  the README runbook).

Consistency model: followers serve *weak* (epoch-snapshot) reads that
trail the primary by replication lag; mutations are refused with the
``read_only`` coded error.  Read-your-writes across the fleet is the
client's job (:class:`~repro.service.client.ReplicaSet` waits on
``last_committed_lsn``).
"""

from __future__ import annotations

import base64
import os
import shutil
import socket
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_frame,
    format_error,
)
from repro.service.wal import (
    LOG_NAME,
    TailBatch,
    WalTailer,
    apply_logged_batch,
    checkpoint_paths,
    checkpoint_refs,
    decode_payload,
    list_checkpoints,
    seed_log,
)

#: Chunk size for ``repl.fetch``: base64 inflates by 4/3, and the whole
#: response frame must stay under the protocol's 1 MiB line cap.
FETCH_CHUNK_BYTES = 256 * 1024


class ReplicaError(RuntimeError):
    """A replication-layer failure (bootstrap or stream)."""


class StaleFollowerError(ReplicaError):
    """The primary compacted past this follower's resume LSN; the
    follower must re-bootstrap from a fresh checkpoint."""


class ReplicationHub:
    """Primary-side state shared by every subscribed follower."""

    def __init__(self, service) -> None:
        if not getattr(service, "wal_attached", False):
            raise ValueError("replication requires a durable service")
        self.service = service
        self.directory: Path = service._wal_dir
        self.tailer = WalTailer(self.directory / LOG_NAME)
        self._lock = threading.Lock()
        self._subscribers: list = []
        service._commit_listeners.append(self._on_commit)

    # -- commit fan-out ----------------------------------------------------

    def _on_commit(self, lsn: int) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for notify in subscribers:
            try:
                notify(lsn)
            except Exception:
                pass

    def add_subscriber(self, notify) -> None:
        with self._lock:
            self._subscribers.append(notify)

    def remove_subscriber(self, notify) -> None:
        with self._lock:
            try:
                self._subscribers.remove(notify)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- log tailing -------------------------------------------------------

    @property
    def committed_lsn(self) -> int:
        """The authoritative committed floor.

        The in-process ``_last_lsn``, not the on-disk commit markers:
        markers are group-committed and lag the acknowledged state, and
        a record the primary acknowledged must ship.
        """
        return int(self.service._last_lsn)

    def poll(self, after_lsn: int, limit: int = 256) -> TailBatch:
        return self.tailer.poll(
            after_lsn, committed_floor=self.committed_lsn, limit=limit
        )

    def base_lsn(self) -> int:
        """Current compaction watermark (one poll refreshes it)."""
        return self.tailer.poll(1 << 62).base_lsn

    # -- bootstrap ---------------------------------------------------------

    def manifest(self) -> dict:
        """The newest complete checkpoint and every file it needs.

        Delta checkpoints reference older ones (delta base + shared
        summary pages), so the file list covers the *transitive*
        reference chain -- a follower that copies exactly these files
        can run ``load_checkpoint`` unmodified.
        """
        for lsn in list_checkpoints(self.directory):
            chain = {lsn}
            worklist = [lsn]
            while worklist:
                for ref in checkpoint_refs(self.directory, worklist.pop()):
                    if ref not in chain:
                        chain.add(ref)
                        worklist.append(ref)
            files = []
            complete = True
            for member in sorted(chain):
                state, summary = checkpoint_paths(self.directory, member)
                for path in (state, summary):
                    if not path.exists():
                        complete = False
                        break
                    files.append(
                        {"name": path.name, "size": path.stat().st_size}
                    )
                if not complete:
                    break
            if not complete:
                continue  # raced a prune; try the next-newest checkpoint
            return {
                "checkpoint_lsn": lsn,
                "committed": self.committed_lsn,
                "files": files,
                "directory": str(self.directory.resolve()),
            }
        raise ReplicaError("primary has no complete checkpoint to bootstrap from")

    def read_chunk(
        self, name: Any, offset: Any = 0, limit: Optional[Any] = None
    ) -> dict:
        """One chunk of a checkpoint file, for ``repl.fetch``."""
        if not isinstance(name, str) or not name or "/" in name or "\\" in name:
            raise ValueError(f"malformed fetch name {name!r}")
        if name in (".", "..") or not name.startswith("ckpt-"):
            raise ValueError(f"fetch refused for {name!r} (not a checkpoint file)")
        offset = int(offset)
        if offset < 0:
            raise ValueError("fetch offset must be >= 0")
        limit = FETCH_CHUNK_BYTES if limit is None else int(limit)
        limit = max(1, min(limit, FETCH_CHUNK_BYTES))
        path = self.directory / name
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(limit)
                size = handle.seek(0, 2)
        except FileNotFoundError:
            raise ReplicaError(
                f"checkpoint file {name} vanished (pruned?); re-fetch the manifest"
            ) from None
        return {
            "name": name,
            "offset": offset,
            "size": size,
            "eof": offset + len(data) >= size,
            "data": base64.b64encode(data).decode("ascii"),
        }


# -- follower bootstrap ------------------------------------------------------


#: Scratch subdirectory a bootstrap transfer stages into before any
#: file lands in the follower directory proper.
BOOTSTRAP_STAGING = ".bootstrap.tmp"


def _has_complete_local_state(directory: Path) -> bool:
    """True when ``directory`` can resume through ordinary recovery:
    the log file exists *and* some checkpoint's transitive reference
    chain is fully on disk.  A bootstrap interrupted mid-transfer
    (checkpoint files copied, seed log never written) must NOT look
    resumable -- recovery over it would fail on an incomplete chain or
    subscribe below the primary's compaction watermark."""
    if not (directory / LOG_NAME).is_file():
        return False
    for lsn in list_checkpoints(directory):
        chain = {lsn}
        worklist = [lsn]
        while worklist:
            for ref in checkpoint_refs(directory, worklist.pop()):
                if ref not in chain:
                    chain.add(ref)
                    worklist.append(ref)
        if all(
            state.is_file() and summary.is_file()
            for member in chain
            for state, summary in [checkpoint_paths(directory, member)]
        ):
            return True
    return False


def bootstrap_follower(
    directory: Union[str, Path],
    primary_host: str,
    primary_port: int,
    *,
    timeout: Optional[float] = 60.0,
) -> dict:
    """Seed a follower directory from the primary's newest checkpoint.

    Idempotent: a directory that already holds a complete checkpoint
    chain *and* a log file is left untouched (``open_durable`` recovery
    is the resume path) and reported with ``transfer: "resume"``.
    Otherwise the checkpoint chain is copied directly when the
    primary's directory is readable on this host (shared filesystem),
    or streamed in ``repl.fetch`` chunks, and a seed log holding the
    checkpoint's ``base`` watermark is written so recovery starts
    exactly at the transferred LSN.

    Crash-atomic: the transfer stages into a scratch subdirectory and
    files move into place only once everything (seed log included) is
    on disk, log last -- so a bootstrap killed at any point leaves a
    directory the retry recognises as incomplete and re-transfers,
    never one that false-reports ``resume`` over a partial chain.
    """
    from repro.service.client import ServiceClient

    directory = Path(directory)
    staging = directory / BOOTSTRAP_STAGING
    resumable = _has_complete_local_state(directory)
    with ServiceClient(primary_host, primary_port, timeout=timeout) as client:
        try:
            response = client.request({"op": "repl.manifest"})
        except (ConnectionError, OSError):
            if resumable:
                # The primary is unreachable but this directory already
                # holds complete durable state: resume from it (the
                # stream will catch up once the primary is back).
                return {"transfer": "resume", "directory": str(directory)}
            raise
        if not response.get("ok"):
            if resumable:
                return {"transfer": "resume", "directory": str(directory)}
            raise ReplicaError(
                "manifest fetch failed: "
                + format_error(response.get("error", "unknown error"))
            )
        source = Path(response["directory"])
        directory.mkdir(parents=True, exist_ok=True)
        if directory.resolve() == source.resolve():
            raise ReplicaError(
                "follower directory must differ from the primary's"
            )
        if resumable:
            shutil.rmtree(staging, ignore_errors=True)  # stale scratch
            return {"transfer": "resume", "directory": str(directory)}
        shutil.rmtree(staging, ignore_errors=True)
        staging.mkdir()
        shared = all(
            (source / entry["name"]).is_file() for entry in response["files"]
        )
        for entry in response["files"]:
            target = staging / entry["name"]
            if shared:
                target.write_bytes((source / entry["name"]).read_bytes())
            else:
                _fetch_file(client, entry, target)
        seed_log(staging / LOG_NAME, int(response["checkpoint_lsn"]))
        # Publish: checkpoint files first, the log LAST -- resumability
        # requires the log, so a crash anywhere before the final move
        # leaves a directory the retry re-transfers (os.replace
        # overwrites any stale partial from an earlier attempt).
        for entry in response["files"]:
            os.replace(staging / entry["name"], directory / entry["name"])
        os.replace(staging / LOG_NAME, directory / LOG_NAME)
        shutil.rmtree(staging, ignore_errors=True)
    return {
        "transfer": "copy" if shared else "fetch",
        "checkpoint_lsn": int(response["checkpoint_lsn"]),
        "files": len(response["files"]),
        "directory": str(directory),
    }


def _fetch_file(client, entry: dict, target: Path) -> None:
    """Stream one checkpoint file over ``repl.fetch`` chunks."""
    name = entry["name"]
    with open(target, "wb") as handle:
        offset = 0
        while True:
            response = client.request(
                {"op": "repl.fetch", "name": name, "offset": offset}
            )
            if not response.get("ok"):
                raise ReplicaError(
                    f"fetch of {name} failed: "
                    + format_error(response.get("error", "unknown error"))
                )
            data = base64.b64decode(response["data"])
            handle.write(data)
            offset += len(data)
            if response.get("eof") or not data:
                break
    if offset != int(entry["size"]) and offset < int(entry["size"]):
        raise ReplicaError(
            f"fetch of {name} ended short ({offset} < {entry['size']} bytes)"
        )


# -- follower apply loop -----------------------------------------------------


class Follower:
    """Continuous apply loop of one read replica.

    Owns a background thread that subscribes to the primary, appends
    each shipped record to the follower's own WAL, applies it through
    the recovery code path, and refreshes the engine's read view so
    weak estimates observe the new epoch.  Reconnects with backoff,
    resuming from the follower's committed LSN; stops loudly when the
    primary compacted past that LSN (``stale_lsn`` -> re-bootstrap) or
    a committed record fails to apply (divergence).
    """

    def __init__(
        self,
        service,
        engine,
        primary_host: str,
        primary_port: int,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 10.0,
        reconnect_backoff: float = 0.2,
        max_backoff: float = 5.0,
    ) -> None:
        if not getattr(service, "wal_attached", False):
            raise ValueError("a follower requires a durable service")
        self.service = service
        self.engine = engine
        self.primary_host = primary_host
        self.primary_port = int(primary_port)
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.reconnect_backoff = reconnect_backoff
        self.max_backoff = max_backoff
        self.records_applied = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        service.follower_of = f"{primary_host}:{self.primary_port}"
        self._set_status(connected=False)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="replica-apply", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def _set_status(
        self,
        *,
        connected: bool,
        source_committed_lsn: Optional[int] = None,
        error: Optional[str] = None,
    ) -> None:
        previous = self.service.replica_status or {}
        self.service.replica_status = {
            "primary": self.service.follower_of,
            "connected": connected,
            "last_applied_lsn": int(self.service._last_lsn),
            "source_committed_lsn": int(
                source_committed_lsn
                if source_committed_lsn is not None
                else previous.get("source_committed_lsn", self.service._last_lsn)
            ),
            "applied_at": previous.get("applied_at", time.time()),
            "error": error,
        }

    # -- the loop ----------------------------------------------------------

    def _run(self) -> None:
        backoff = self.reconnect_backoff
        while not self._stop.is_set():
            try:
                self._stream_once()
                backoff = self.reconnect_backoff  # clean EOF: reset
            except StaleFollowerError as exc:
                self._set_status(connected=False, error=str(exc))
                self._stop.set()
                return
            except ReplicaError as exc:
                self._set_status(connected=False, error=str(exc))
                self._stop.set()
                return
            except (OSError, ConnectionError, ProtocolError) as exc:
                self._set_status(connected=False, error=str(exc))
            except Exception as exc:
                # Divergence (``WalError``: a committed record failed to
                # apply) or any other unexpected apply failure.  Stop
                # loudly -- a silent thread death would leave
                # ``replica_status`` reporting a healthy, connected
                # follower while replication is dead.
                self._set_status(
                    connected=False, error=f"{type(exc).__name__}: {exc}"
                )
                self._stop.set()
                return
            if self._stop.is_set():
                return
            self._stop.wait(backoff)
            backoff = min(backoff * 2, self.max_backoff)

    def _stream_once(self) -> None:
        with socket.create_connection(
            (self.primary_host, self.primary_port), timeout=self.connect_timeout
        ) as sock:
            sock.settimeout(self.read_timeout)
            stream = sock.makefile("rb")
            from_lsn = int(self.service._last_lsn)
            sock.sendall(
                encode_frame({"op": "repl.subscribe", "from_lsn": from_lsn})
            )
            handshake = self._read_frame(stream)
            if not handshake.get("ok"):
                error = handshake.get("error")
                code = error.get("code") if isinstance(error, dict) else None
                if code == "stale_lsn":
                    raise StaleFollowerError(format_error(error))
                raise ReplicaError(
                    "subscribe refused: " + format_error(error or "unknown")
                )
            self._set_status(
                connected=True,
                source_committed_lsn=handshake.get("committed"),
            )
            # A record payload larger than one line arrives as a chunk
            # sequence (every frame but the last carries ``more``);
            # chunks of one record are contiguous on the stream, keyed
            # by LSN, and a disconnect mid-sequence simply discards the
            # partial buffer -- the reconnect resumes below the record.
            pending_lsn: Optional[int] = None
            pending_chunks: list = []
            while not self._stop.is_set():
                try:
                    frame = self._read_frame(stream)
                except socket.timeout:
                    raise ConnectionError(
                        "no frame (not even a keepalive) from the primary "
                        f"within {self.read_timeout}s"
                    ) from None
                op = frame.get("op")
                if op == "repl.record":
                    lsn, chunk = self._decode_record_chunk(frame)
                    if pending_lsn is not None and lsn != pending_lsn:
                        raise ProtocolError(
                            f"repl.record chunk for lsn {lsn} interleaved "
                            f"with an unfinished record for lsn {pending_lsn}"
                        )
                    pending_chunks.append(chunk)
                    if frame.get("more"):
                        pending_lsn = lsn
                        continue
                    payload = b"".join(pending_chunks)
                    pending_lsn = None
                    pending_chunks = []
                    self._apply_record(frame, lsn, payload)
                elif op == "repl.keepalive":
                    self._set_status(
                        connected=True,
                        source_committed_lsn=frame.get("committed"),
                    )
                elif frame.get("ok") is False:
                    error = frame.get("error")
                    code = error.get("code") if isinstance(error, dict) else None
                    if code == "stale_lsn":
                        raise StaleFollowerError(format_error(error))
                    raise ReplicaError("stream error: " + format_error(error))
                # anything else: ignore (forward-compatible stream frames)

    def _read_frame(self, stream) -> dict:
        import json

        raw = stream.readline(MAX_LINE_BYTES + 1)
        if not raw:
            raise ConnectionError("primary closed the replication stream")
        if not raw.endswith(b"\n"):
            raise ConnectionError("primary disconnected mid-frame")
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError("oversized replication frame")
        try:
            frame = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"malformed replication frame: {exc}") from None
        if not isinstance(frame, dict):
            raise ProtocolError("replication frame must be a JSON object")
        return frame

    @staticmethod
    def _decode_record_chunk(frame: dict) -> tuple:
        """``(lsn, raw_bytes)`` of one ``repl.record`` frame."""
        try:
            return int(frame["lsn"]), base64.b64decode(frame["raw"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed repl.record frame: {exc}") from None

    def _apply_record(self, frame: dict, lsn: int, payload: bytes) -> None:
        service = self.service
        obj = decode_payload(payload)
        if obj is None or obj.get("type") != "batch" or obj.get("lsn") != lsn:
            raise ProtocolError(
                f"repl.record payload for lsn {lsn} fails validation"
            )
        with service._state_lock:
            if lsn <= service._last_lsn:
                return  # duplicate delivery (reconnect overlap): idempotent
            # Mirror the primary's log discipline: record first, then
            # apply, then the commit marker (buffered; it rides with the
            # next record).  No fsync -- a torn tail is truncated on
            # restart and re-shipped from the resume LSN.
            service._wal.append_raw(payload, lsn)
            applied = apply_logged_batch(service, obj, committed=True)
            if applied:
                service._wal.mark_committed(lsn)
            else:
                service._wal.mark_aborted(lsn)
            self.records_applied += 1
            checkpoint_due = (
                lsn - service._last_checkpoint_lsn >= service._checkpoint_every
            )
        # Publish the new read view *before* advancing the committed LSN:
        # a read-your-writes client gates on ``health.last_committed_lsn``
        # and must never observe the LSN without the epoch that contains
        # it.  (``snapshot()`` pins the epoch itself, so this cannot run
        # under the state lock.)
        if self.engine is not None:
            self.engine._refresh_view()
        with service._state_lock:
            service._note_commit(lsn)
        status = self.service.replica_status or {}
        self.service.replica_status = {
            **status,
            "connected": True,
            "last_applied_lsn": lsn,
            "source_committed_lsn": int(
                frame.get("committed", max(lsn, status.get("source_committed_lsn", 0)))
            ),
            "applied_at": time.time(),
            "error": None,
        }
        if checkpoint_due:
            try:
                service.checkpoint()
            except Exception:
                pass  # lag-bounded durability is best-effort on replicas


__all__ = [
    "FETCH_CHUNK_BYTES",
    "Follower",
    "ReplicaError",
    "ReplicationHub",
    "StaleFollowerError",
    "bootstrap_follower",
]
