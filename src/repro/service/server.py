"""Concurrent serve tier: admission batching + asyncio TCP front-end.

Two classes promote :class:`~repro.service.service.EstimationService`
from a single-caller library into a multi-client server:

* :class:`ServiceEngine` -- the **admission batcher**.  One dedicated
  writer thread owns every state transition of the service.  Concurrent
  writers submit individual ``insert``/``delete`` requests; the writer
  drains whatever is queued (up to ``max_ops``, optionally lingering
  ``linger`` seconds for stragglers) and applies the group as **one**
  :meth:`~repro.service.service.EstimationService.apply_batch` call --
  one WAL record and one fsync for the whole group, which is where the
  multi-client throughput win comes from.  Responses stay per-request:
  when a grouped flush fails, the group is retried one op at a time
  (the rollback left the service bit-identical to its pre-batch state),
  so every client learns the fate of exactly its own op and the state
  ends as if the failing ops were never admitted.

  Reads never enter that queue: ``estimate`` runs lock-free against the
  engine's *read view* -- a pinned
  :class:`~repro.service.snapshot.ServiceSnapshot` the writer refreshes
  (O(1), epoch pin swap) after each flush -- or against a client-pinned
  snapshot (``snapshot``/``release``), so they never block behind a
  writer.  ``estimate`` with ``"strong": true``, ``exact``, ``execute``,
  ``stats``, ``save``, ``snapshot`` and ``shutdown`` are *barriers*:
  they queue behind (and first flush) every earlier-admitted write,
  giving read-your-writes to the session that issued them.

* :class:`EstimationServer` -- the asyncio TCP front-end speaking the
  line-delimited JSON protocol of :mod:`repro.service.protocol`.  Each
  connection may pipeline requests; responses are written strictly in
  request order.  A malformed frame produces one error frame and the
  connection keeps serving.  Disconnecting releases the session's
  pinned snapshots and *cancels* its queued-but-unflushed writes --
  they are dropped at flush time as if never admitted.

The stdin ``serve`` loop and the ``client`` subcommand drive the same
:meth:`ServiceEngine.request` entry point, so the interactive command
language and the network protocol cannot drift apart.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.predicates.base import TagPredicate
from repro.service.batch import BatchError, DeleteOp, InsertOp
from repro.service.faults import NET_RECV, NET_SEND
from repro.service.protocol import (
    MAX_LINE_BYTES,
    OverloadedError,
    ProtocolError,
    ReadOnlyError,
    ShuttingDownError,
    StaleLsnError,
    decode_frame,
    encode_frame,
    error_response,
    exception_response,
)

#: Idle-stream heartbeat: a subscribed follower receives at least one
#: frame this often, carrying the primary's committed LSN (the lag
#: yardstick) and doubling as the dead-primary detector.
REPL_KEEPALIVE_SECONDS = 0.5
#: Raw payload bytes per ``repl.record`` frame.  Base64 inflates by 4/3
#: and followers refuse any line over ``MAX_LINE_BYTES`` (1 MiB), while
#: admission batching can coalesce many near-cap client ops into ONE
#: WAL record -- so large records ship as a chunk sequence (``more``
#: marks every frame but the last) the follower reassembles by LSN.
#: 512 KiB raw -> ~683 KiB encoded, comfortably under the line cap.
REPL_RECORD_CHUNK_BYTES = 512 * 1024
from repro.xmltree.parser import parse_document


def _locate(service, target: dict) -> int:
    """Pre-order index of an update target description.

    ``{"index": i}`` is taken literally; ``{"tag": t, "ordinal": k}``
    finds the k-th element (1-based, default 1) with the tag, with the
    same wording the serve loop has always used for misses.
    """
    if not isinstance(target, dict):
        raise ValueError(f"malformed target {target!r}")
    if "index" in target:
        index = int(target["index"])
        if not 0 <= index < len(service.tree):
            raise IndexError(f"node index {index} outside the tree")
        return index
    tag = target.get("tag")
    if not isinstance(tag, str) or not tag:
        raise ValueError(f"malformed target {target!r}")
    ordinal = int(target.get("ordinal", 1))
    if ordinal < 1:
        raise ValueError(f"ordinal must be >= 1, got {ordinal}")
    indices = service.catalog.stats(TagPredicate(tag)).node_indices
    if len(indices) < ordinal:
        raise ValueError(
            f"only {len(indices)} elements with tag {tag!r} (wanted #{ordinal})"
        )
    return int(indices[ordinal - 1])


def _detached_subtree(xml: str):
    """Parse an XML snippet into a detached element ready to insert."""
    snippet = parse_document(xml)
    subtree = snippet.root_element
    snippet.children.remove(subtree)
    subtree.parent = None
    return subtree


@dataclass
class OpSpec:
    """One admitted update, resolved lazily at flush time.

    Targets are descriptions (tag/ordinal or index), not node handles:
    they resolve in the writer thread against the database state the
    flush starts from, exactly like the batched serve loop always has.
    The XML of an insert is validated at admission (the submitting
    client gets the parse error) but re-parsed at each resolution, so a
    retry after a rolled-back group always splices fresh elements.
    """

    kind: str  # "insert" | "delete"
    target: dict
    xml: Optional[str] = None
    position: Optional[int] = None

    @classmethod
    def from_request(cls, request: dict) -> "OpSpec":
        op = request["op"]
        if op == "insert":
            xml = request.get("xml")
            if not isinstance(xml, str) or not xml.strip():
                raise ValueError('insert needs an "xml" snippet')
            parse_document(xml)  # admission-time validation
            position = request.get("position")
            return cls(
                "insert",
                request.get("parent", {}),
                xml=xml,
                position=None if position is None else int(position),
            )
        if op == "delete":
            return cls("delete", request.get("node", {}))
        raise ValueError(f"not an update op: {op!r}")

    def resolve(self, service) -> tuple[Any, int]:
        """``(InsertOp | DeleteOp, node_count)`` against the current tree.

        Element handles (not raw indices) go into the batch op, so a
        grouped flush keeps targeting the right nodes however earlier
        ops of the same group shift the numbering.
        """
        index = _locate(service, self.target)
        element = service.tree.elements[index]
        if self.kind == "insert":
            subtree = _detached_subtree(self.xml)
            return (
                InsertOp(element, subtree, self.position),
                sum(1 for _ in subtree.iter()),
            )
        start = int(service.tree.start[index])
        end = int(service.tree.end[index])
        nodes = int(
            np.count_nonzero(
                (service.tree.start >= start) & (service.tree.end <= end)
            )
        )
        return DeleteOp(element), nodes


class Ticket:
    """One queued request: the submitter blocks (or registers a
    callback) until the writer thread resolves it with a response."""

    __slots__ = ("request", "spec", "specs", "session", "response", "_event", "_callback")

    def __init__(
        self,
        request: dict,
        *,
        spec: Optional[OpSpec] = None,
        specs: Optional[list[OpSpec]] = None,
        session: Optional["Session"] = None,
        callback: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.request = request
        self.spec = spec
        self.specs = specs
        self.session = session
        self.response: Optional[dict] = None
        self._event = threading.Event()
        self._callback = callback

    def resolve(self, response: dict) -> None:
        if "id" not in response and "id" in self.request:
            response["id"] = self.request["id"]
        self.response = response
        self._event.set()
        if self._callback is not None:
            self._callback(response)

    def wait(self, timeout: Optional[float] = None) -> dict:
        if not self._event.wait(timeout):
            raise TimeoutError("request timed out waiting for the writer thread")
        return self.response  # type: ignore[return-value]


class Session:
    """Per-client state: liveness and the snapshots the client pinned.

    ``closed`` is the cancellation signal: the writer thread drops a
    closed session's queued updates at flush time, so a disconnect
    leaves the service as if those ops were never admitted.
    """

    __slots__ = ("engine", "closed", "snapshot_ids", "_lock")

    def __init__(self, engine: "ServiceEngine") -> None:
        self.engine = engine
        self.closed = False
        self.snapshot_ids: set[int] = set()
        self._lock = threading.Lock()

    def close(self) -> None:
        self.closed = True
        with self._lock:
            sids = list(self.snapshot_ids)
            self.snapshot_ids.clear()
        for sid in sids:
            self.engine._drop_snapshot(sid)


@dataclass
class EngineStats:
    """Admission-tier counters (the service keeps its own)."""

    requests: int = 0
    flushes: int = 0
    ops_admitted: int = 0
    ops_failed: int = 0
    ops_cancelled: int = 0
    ops_deduped: int = 0
    ops_rejected: int = 0
    sessions_evicted: int = 0
    largest_group: int = 0
    view_refreshes: int = 0
    protocol_errors: int = 0


#: Ops executed inline by the submitting thread, never queued.  Health
#: is deliberately immediate: it must answer even when the writer is
#: wedged behind a slow flush or the service is degraded.
_IMMEDIATE_OPS = frozenset({"ping", "release", "health"})
#: Ops the writer thread runs as barriers (pending writes flush first).
_CONTROL_OPS = frozenset(
    {"estimate", "exact", "execute", "stats", "save", "snapshot", "batch",
     "resume", "shutdown"}
)


class ServiceEngine:
    """Single-writer admission engine over one ``EstimationService``.

    All mutation flows through one writer thread; reads run on the
    calling thread against pinned epoch views.  ``max_ops`` caps the
    ops coalesced into one ``apply_batch`` call; ``linger`` (seconds,
    ``None`` = greedy) holds a non-full group open for stragglers once
    at least one op is pending.

    ``max_queue`` bounds the admission queue: past the high-water mark
    ``submit`` fast-rejects with :class:`OverloadedError` instead of
    letting one fast writer grow the queue without limit.
    ``dedup_window`` sizes the idempotency LRU -- the last N committed
    request keys with their recorded replies, so a client retry of an
    acked-but-lost mutation replays the reply instead of re-applying.
    """

    def __init__(
        self,
        service,
        *,
        max_ops: int = 64,
        linger: Optional[float] = None,
        max_queue: Optional[int] = None,
        dedup_window: int = 1024,
    ) -> None:
        if max_ops < 1:
            raise ValueError("max_ops must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.service = service
        self.max_ops = max_ops
        self.linger = linger if linger else None
        self.max_queue = max_queue
        self.dedup_window = max(0, int(dedup_window))
        #: Idempotency LRU: key -> recorded success reply.  Touched only
        #: by the writer thread (flush paths), so it needs no lock.
        self._dedup: "OrderedDict[str, dict]" = OrderedDict()
        self.stats = EngineStats()
        self.shutdown_event = threading.Event()
        self._on_shutdown: list[Callable[[], None]] = []
        self._cond = threading.Condition()
        self._queue: list[Ticket] = []
        self._stopping = False
        self._failed: Optional[BaseException] = None
        self._snapshots: dict[int, Any] = {}
        self._snapshot_ids = itertools.count(1)
        self._repl_hub = None
        self._repl_lock = threading.Lock()
        self._view = service.snapshot()
        self._writer = threading.Thread(
            target=self._run, name="admission-writer", daemon=True
        )
        self._writer.start()

    # -- public API --------------------------------------------------------

    def session(self) -> Session:
        return Session(self)

    @property
    def mode(self) -> str:
        """``SERVING`` | ``DEGRADED`` | ``SHUTTING_DOWN`` -- the health
        state machine (shutdown wins: a degraded service draining for
        exit reports SHUTTING_DOWN)."""
        if self._stopping:
            return "SHUTTING_DOWN"
        if getattr(self.service, "degraded", False):
            return "DEGRADED"
        return "SERVING"

    def request(self, request: dict, session: Optional[Session] = None) -> dict:
        """Synchronous dispatch: immediate ops run inline, everything
        else queues to the writer thread and blocks for the response."""
        try:
            op = request.get("op")
            if not isinstance(op, str):
                raise ProtocolError('request is missing a string "op" field')
            if op in _IMMEDIATE_OPS or (op == "estimate" and self._is_weak(request)):
                self.stats.requests += 1
                return self._immediate(request, session)
            return self.submit(request, session).wait()
        except Exception as exc:
            return exception_response(exc, request)

    def submit(
        self,
        request: dict,
        session: Optional[Session] = None,
        callback: Optional[Callable[[dict], None]] = None,
    ) -> Ticket:
        """Queue one request for the writer thread.

        Raises on malformed requests (the op never queues); the ticket
        resolves with the response once the writer reaches it.
        """
        op = request.get("op")
        self.stats.requests += 1
        if op in ("insert", "delete"):
            ticket = Ticket(
                request,
                spec=OpSpec.from_request(request),
                session=session,
                callback=callback,
            )
        elif op == "batch":
            ops = request.get("ops")
            if not isinstance(ops, list):
                raise ValueError('batch needs an "ops" list')
            specs = [OpSpec.from_request(entry) for entry in ops]
            ticket = Ticket(request, specs=specs, session=session, callback=callback)
        elif op in _CONTROL_OPS:
            ticket = Ticket(request, session=session, callback=callback)
        else:
            raise ProtocolError(f"unknown op {op!r}")
        with self._cond:
            if self._failed is not None:
                raise RuntimeError(f"admission writer died: {self._failed}")
            if self._stopping:
                raise ShuttingDownError("service is shutting down")
            if self.max_queue is not None and len(self._queue) >= self.max_queue:
                self.stats.ops_rejected += 1
                raise OverloadedError(
                    f"admission queue at its high-water mark ({self.max_queue})",
                    retry_after_ms=50.0,
                )
            self._queue.append(ticket)
            self._cond.notify_all()
        return ticket

    @property
    def replication_hub(self):
        """The primary-side streaming hub, created on first use.

        ``None`` when the service has no WAL attached -- replication
        needs a log to ship.
        """
        if self._repl_hub is None and getattr(self.service, "wal_attached", False):
            with self._repl_lock:
                if self._repl_hub is None:
                    from repro.service.replica import ReplicationHub

                    self._repl_hub = ReplicationHub(self.service)
        return self._repl_hub

    def on_shutdown(self, callback: Callable[[], None]) -> None:
        """Register a callable fired once when ``shutdown`` is admitted."""
        self._on_shutdown.append(callback)

    def close(self) -> None:
        """Stop the writer (flushing admitted work) and drop all pins."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        self._writer.join(timeout=60)
        for sid in list(self._snapshots):
            self._drop_snapshot(sid)
        if self._view is not None:
            self._view.close()
            self._view = None

    # -- immediate (lock-free) ops -----------------------------------------

    def _is_weak(self, request: dict) -> bool:
        return not request.get("strong") or "snapshot" in request

    def _immediate(self, request: dict, session: Optional[Session]) -> dict:
        response = self._immediate_response(request, session)
        if "id" not in response and "id" in request:
            response["id"] = request["id"]
        return response

    def _immediate_response(self, request: dict, session: Optional[Session]) -> dict:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "health":
            return self._health_response()
        if op == "release":
            sid = int(request.get("snapshot", 0))
            if not self._drop_snapshot(sid):
                return error_response(f"unknown snapshot {sid}", request)
            if session is not None:
                with session._lock:
                    session.snapshot_ids.discard(sid)
            return {"ok": True, "op": "release", "snapshot": sid}
        # weak estimate: current read view or a client-pinned snapshot
        if "snapshot" in request:
            view = self._snapshots.get(int(request["snapshot"]))
            if view is None:
                return error_response(
                    f"unknown snapshot {request['snapshot']}", request
                )
        else:
            view = self._view
        return self._estimate_on(view, request)

    def _health_response(self) -> dict:
        """Liveness + mode + load, served without touching the queue.

        Reads racy counters without the condition lock -- health must
        answer while the writer is mid-flush or wedged, and a depth off
        by one is fine for an operator signal.
        """
        service = self.service
        wal: dict[str, Any] = {"attached": service.wal_attached}
        if service.wal_attached:
            wal["lag"] = int(service._last_lsn - service._last_checkpoint_lsn)
            wal["last_lsn"] = int(service._last_lsn)
        else:
            wal["lag"] = 0
        response: dict[str, Any] = {
            "ok": True,
            "op": "health",
            "mode": self.mode,
            "queue_depth": len(self._queue),
            "epoch": int(service.epoch),
            "wal": wal,
            "last_committed_lsn": int(service._last_lsn),
        }
        replication = self._replication_status()
        if replication is not None:
            response["replication"] = replication
        if getattr(service, "degraded", False):
            response["degraded_reason"] = service.degraded_reason
        return response

    def _replication_status(self) -> Optional[dict]:
        """Role + lag, for health/stats.  ``None`` off the replication
        paths (a plain primary with no subscribers stays quiet)."""
        service = self.service
        status = getattr(service, "replica_status", None)
        if getattr(service, "follower_of", None) is not None:
            out: dict[str, Any] = {
                "role": "follower",
                "primary": service.follower_of,
                "last_applied_lsn": int(service._last_lsn),
            }
            if status is not None:
                source = int(status.get("source_committed_lsn", service._last_lsn))
                lag = max(0, source - int(service._last_lsn))
                out["replica_lag_lsns"] = lag
                applied_at = status.get("applied_at")
                if lag > 0 and applied_at is not None:
                    out["replica_lag_seconds"] = max(0.0, time.time() - applied_at)
                else:
                    out["replica_lag_seconds"] = 0.0
                out["connected"] = bool(status.get("connected", False))
                if status.get("error"):
                    out["error"] = str(status["error"])
            return out
        hub = self._repl_hub
        if hub is not None and hub.subscriber_count > 0:
            return {"role": "primary", "subscribers": hub.subscriber_count}
        return None

    @staticmethod
    def _estimate_on(view, request: dict) -> dict:
        queries = request.get("queries")
        if queries is not None:
            results = view.estimate_many(list(queries))
            return {"ok": True, "values": [r.value for r in results]}
        query = request.get("query")
        if not query:
            raise ValueError("usage: estimate <query>")
        result = view.estimate(query)
        return {"ok": True, "value": result.value, "epoch": view.epoch}

    # -- writer thread -----------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                group, control = self._collect()
                if group:
                    self._flush_group(group)
                elif control is not None:
                    self._execute_control(control)
                else:
                    return  # stopping, queue drained
        except BaseException as exc:  # pragma: no cover - defensive
            with self._cond:
                self._failed = exc
                pending, self._queue = self._queue, []
            for ticket in pending:
                ticket.resolve(error_response(f"admission writer died: {exc}"))
            raise

    def _collect(self) -> tuple[list[Ticket], Optional[Ticket]]:
        """Block until work is available.

        Returns ``(update_group, None)`` or ``([], control_ticket)``;
        ``([], None)`` only when stopping with an empty queue.  Updates
        accumulate until the group is full, a control op is next (it
        must observe the flush), or the queue drains (after ``linger``
        seconds, when configured).
        """
        group: list[Ticket] = []
        deadline: Optional[float] = None
        with self._cond:
            while True:
                while self._queue and len(group) < self.max_ops:
                    head = self._queue[0]
                    if head.request["op"] not in ("insert", "delete"):
                        if group:
                            return group, None
                        return [], self._queue.pop(0)
                    group.append(self._queue.pop(0))
                if len(group) >= self.max_ops:
                    return group, None
                if group:
                    if self.linger is None or self._stopping:
                        return group, None
                    if deadline is None:
                        deadline = time.monotonic() + self.linger
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return group, None
                    self._cond.wait(remaining)
                else:
                    if self._stopping:
                        return [], None
                    self._cond.wait()

    def _live(self, group: list[Ticket]) -> list[Ticket]:
        """Drop ops whose client went away before the flush."""
        live = []
        for ticket in group:
            if ticket.session is not None and ticket.session.closed:
                self.stats.ops_cancelled += 1
                ticket.resolve(
                    error_response("client disconnected before admission", ticket.request)
                )
            else:
                live.append(ticket)
        return live

    # -- idempotent dedup (writer thread only) ------------------------------

    @staticmethod
    def _idem_key(request: dict) -> Optional[str]:
        key = request.get("idem")
        return key if isinstance(key, str) and key else None

    def _dedup_record(self, request: dict, response: dict) -> None:
        """Remember a *committed* reply under its idempotency key.

        Only success replies are recorded: a failed op was never
        applied, so retrying it is safe and should really retry.  The
        stored copy drops ``id`` (each delivery echoes its own).
        """
        key = self._idem_key(request)
        if key is None or self.dedup_window == 0 or not response.get("ok"):
            return
        self._dedup[key] = {k: v for k, v in response.items() if k != "id"}
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.dedup_window:
            self._dedup.popitem(last=False)

    def _dedup_replay(self, ticket: Ticket) -> bool:
        """Replay the recorded reply for a retried key, if one exists."""
        key = self._idem_key(ticket.request)
        if key is None:
            return False
        stored = self._dedup.get(key)
        if stored is None:
            return False
        self._dedup.move_to_end(key)
        self.stats.ops_deduped += 1
        response = dict(stored)
        response["deduped"] = True
        ticket.resolve(response)
        return True

    def _finish_op(self, ticket: Ticket, nodes: int, rebuilt: bool, coalesced: int) -> None:
        response = self._op_response(ticket, nodes, rebuilt, coalesced)
        self._dedup_record(ticket.request, response)
        ticket.resolve(response)

    def _flush_group(self, group: list[Ticket]) -> None:
        """One coalesced ``apply_batch`` for a group of single-op tickets,
        with per-op attribution on failure."""
        service = self.service
        if getattr(service, "degraded", False):
            # Sticky read-only: reject the whole group fast (dedup
            # still replays committed retries -- they *did* apply).
            for ticket in self._live(group):
                if self._dedup_replay(ticket):
                    continue
                self.stats.ops_failed += 1
                ticket.resolve(error_response(ReadOnlyError(
                    f"service is read-only (degraded): {service.degraded_reason}"
                ), ticket.request))
            return
        resolved: list[tuple[Ticket, Any, int]] = []
        deferred: list[Ticket] = []
        group_keys: set[str] = set()
        for ticket in self._live(group):
            if self._dedup_replay(ticket):
                continue
            key = self._idem_key(ticket.request)
            if key is not None:
                if key in group_keys:
                    # Duplicate key *within* this group: hold it back
                    # until the first instance commits, then replay.
                    deferred.append(ticket)
                    continue
                group_keys.add(key)
            try:
                op, nodes = ticket.spec.resolve(service)
            except Exception as exc:
                self.stats.ops_failed += 1
                ticket.resolve(exception_response(exc, ticket.request))
                continue
            resolved.append((ticket, op, nodes))
        if resolved:
            try:
                result = service.apply_batch([op for _, op, _ in resolved])
            except BatchError as exc:
                if exc.applied:
                    # Every op applied; only the summary flush failed and
                    # the service re-synchronised with a rebuild.  Report
                    # success.
                    self._record_flush(len(resolved))
                    for ticket, _, nodes in resolved:
                        self._finish_op(ticket, nodes, True, len(resolved))
                else:
                    self._retry_singly([t for t, _, _ in resolved])
                self._refresh_view()
            except Exception:
                # First-op failure: apply_batch re-raised the original
                # error with the pre-batch state restored (a WAL append
                # failure degrades the service and applies nothing --
                # the singly retries then get coded read_only errors).
                self._retry_singly([t for t, _, _ in resolved])
                self._refresh_view()
            else:
                self._record_flush(result.ops)
                for ticket, _, nodes in resolved:
                    self._finish_op(ticket, nodes, result.rebuilt, result.ops)
                self._refresh_view()
        if deferred:
            self._retry_singly(deferred)
            self._refresh_view()

    def _retry_singly(self, tickets: list[Ticket]) -> None:
        """A grouped flush was rolled back (state bit-identical to
        pre-batch); re-apply one op at a time so each client learns the
        fate of exactly its own op and failing ops are never admitted."""
        service = self.service
        for ticket in tickets:
            if self._dedup_replay(ticket):
                continue
            try:
                op, nodes = ticket.spec.resolve(service)
                result = service.apply_batch([op])
            except Exception as exc:
                self.stats.ops_failed += 1
                ticket.resolve(exception_response(exc, ticket.request))
                continue
            self._record_flush(result.ops)
            self._finish_op(ticket, nodes, result.rebuilt, result.ops)

    @staticmethod
    def _op_response(ticket: Ticket, nodes: int, rebuilt: bool, coalesced: int) -> dict:
        return {
            "ok": True,
            "op": ticket.request["op"],
            "nodes": nodes,
            "rebuilt": rebuilt,
            "coalesced": coalesced,
        }

    def _record_flush(self, ops: int) -> None:
        self.stats.flushes += 1
        self.stats.ops_admitted += ops
        self.stats.largest_group = max(self.stats.largest_group, ops)

    def _refresh_view(self) -> None:
        """Swap the lock-free read view to the just-published epoch.

        O(1): snapshot construction pins the new epoch, the swap is one
        reference assignment, and closing the old view only drops its
        pin (readers mid-estimate on it keep answering -- a closed
        snapshot stays fully readable)."""
        old = self._view
        self._view = self.service.snapshot()
        self.stats.view_refreshes += 1
        if old is not None:
            old.close()

    # -- barrier ops -------------------------------------------------------

    def _execute_control(self, ticket: Ticket) -> None:
        try:
            response = self._control_response(ticket)
        except Exception as exc:
            response = exception_response(exc, ticket.request)
        ticket.resolve(response)
        if ticket.request["op"] == "shutdown" and response.get("ok"):
            # Fire the teardown hooks only after the requester has its
            # response in hand, so the acknowledgment can flush before
            # the front-end starts closing connections.
            self.shutdown_event.set()
            for callback in self._on_shutdown:
                callback()

    def _control_response(self, ticket: Ticket) -> dict:
        service = self.service
        request = ticket.request
        op = request["op"]
        if op == "estimate":
            return self._estimate_on(service, request)
        if op == "exact":
            query = request.get("query")
            if not query:
                raise ValueError("usage: exact <query>")
            return {"ok": True, "value": int(service.real_answer(query))}
        if op == "execute":
            query = request.get("query")
            if not query:
                raise ValueError("usage: execute <query>")
            outcome = service.execute(query)
            return {
                "ok": True,
                "rows": len(outcome.bindings),
                "cost": float(outcome.choice.best.total),
            }
        if op == "stats":
            stats = self.stats
            replication = self._replication_status()
            return {
                "ok": True,
                "nodes": len(service),
                "predicates": len(service.catalog),
                "dirty": service.dirty_fraction,
                "rebuilds": service.stats.rebuilds,
                "epoch": service.epoch,
                "mode": self.mode,
                **({"replication": replication} if replication else {}),
                "last_committed_lsn": int(service._last_lsn),
                "server": {
                    "requests": stats.requests,
                    "flushes": stats.flushes,
                    "ops_admitted": stats.ops_admitted,
                    "ops_failed": stats.ops_failed,
                    "ops_cancelled": stats.ops_cancelled,
                    "ops_deduped": stats.ops_deduped,
                    "ops_rejected": stats.ops_rejected,
                    "sessions_evicted": stats.sessions_evicted,
                    "largest_group": stats.largest_group,
                    "snapshots_pinned": len(self._snapshots),
                },
            }
        if op == "save":
            path = request.get("path")
            if not path:
                raise ValueError("usage: save <path.npz>")
            written = service.save_statistics(path)
            return {"ok": True, "predicates": written, "path": str(path)}
        if op == "snapshot":
            snap = service.snapshot()
            sid = next(self._snapshot_ids)
            self._snapshots[sid] = snap
            if ticket.session is not None:
                with ticket.session._lock:
                    ticket.session.snapshot_ids.add(sid)
            return {"ok": True, "snapshot": sid, "epoch": snap.epoch}
        if op == "batch":
            return self._apply_batch_request(ticket)
        if op == "resume":
            result = service.resume_writes()
            self._refresh_view()
            return {"ok": True, "op": "resume", **result}
        if op == "shutdown":
            with self._cond:
                self._stopping = True
                self._cond.notify_all()
            return {"ok": True, "op": "shutdown"}
        raise ProtocolError(f"unknown op {op!r}")

    def _apply_batch_request(self, ticket: Ticket) -> dict:
        """An explicit ``batch`` request: all-or-nothing admission.

        Any resolution or operation failure rejects the whole batch and
        the service stays (bit-identically) as if it was never
        admitted -- the semantics the batched serve loop has always
        had.  The whole batch is one WAL record + one fsync.
        """
        service = self.service
        key = self._idem_key(ticket.request)
        if key is not None:
            stored = self._dedup.get(key)
            if stored is not None:
                # Retried batch whose first delivery committed: replay.
                self._dedup.move_to_end(key)
                self.stats.ops_deduped += 1
                return {**stored, "deduped": True}
        ops = []
        nodes = []
        for spec in ticket.specs or []:
            op, count = spec.resolve(service)
            ops.append(op)
            nodes.append(count)
        if not ops:
            return {"ok": True, "op": "batch", "results": [], "ops": 0,
                    "nodes_inserted": 0, "nodes_deleted": 0, "rebuilt": False}
        result = service.apply_batch(ops)
        self._record_flush(result.ops)
        self._refresh_view()
        response = {
            "ok": True,
            "op": "batch",
            "ops": result.ops,
            "inserts": result.inserts,
            "deletes": result.deletes,
            "nodes_inserted": result.nodes_inserted,
            "nodes_deleted": result.nodes_deleted,
            "rebuilt": result.rebuilt,
            "results": [
                {"ok": True, "nodes": count, "rebuilt": result.rebuilt}
                for count in nodes
            ],
        }
        self._dedup_record(ticket.request, response)
        return response

    def _drop_snapshot(self, sid: int) -> bool:
        snap = self._snapshots.pop(sid, None)
        if snap is None:
            return False
        snap.close()  # idempotent + thread-safe
        return True


class EstimationServer:
    """Asyncio TCP front-end for a :class:`ServiceEngine`.

    Runs its event loop on a dedicated thread so the synchronous CLI
    can keep its stdin session on the main thread.  Per connection,
    requests may pipeline; responses are written strictly in request
    order.  Queued ops resolve through thread-safe callbacks into the
    loop; weak reads run on the default executor so estimation work
    never stalls the loop.

    ``client_timeout`` (seconds) evicts a stalled client: a connection
    that sends nothing for that long is closed and its unflushed ops
    are cancelled through the :class:`Session` path.  ``max_inflight``
    caps queued requests per connection (excess gets an ``overloaded``
    fast-reject frame, the connection stays usable).  ``drain_timeout``
    bounds how long teardown waits for the responder to flush pending
    replies before cancelling it.  ``faults`` arms a
    :class:`~repro.service.faults.FaultPlan` over the network points.
    """

    def __init__(
        self,
        engine: ServiceEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 5.0,
        client_timeout: Optional[float] = None,
        max_inflight: Optional[int] = None,
        faults=None,
    ) -> None:
        if drain_timeout <= 0:
            raise ValueError("drain_timeout must be > 0")
        if client_timeout is not None and client_timeout <= 0:
            raise ValueError("client_timeout must be > 0")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.engine = engine
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.client_timeout = client_timeout
        self.max_inflight = max_inflight
        self.faults = faults
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._thread_main, name="estimation-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        self.engine.on_shutdown(self.stop)

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - startup races
            self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._connections: set = set()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=2 * MAX_LINE_BYTES,
        )
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Graceful drain: connections that already have their final
            # responses (e.g. the shutdown acknowledgment) get a moment
            # to flush and see the client hang up; stragglers are cut.
            if self._connections:
                done, pending = await asyncio.wait(
                    self._connections, timeout=1.0
                )
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)

    # -- per-connection ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        engine = self.engine
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        session = engine.session()
        responses: asyncio.Queue = asyncio.Queue()
        responder = asyncio.create_task(self._respond(responses, writer))
        # The outer except absorbs teardown cancellation so the task
        # ends cleanly (asyncio's stream machinery re-raises a stored
        # CancelledError noisily otherwise); state is released in the
        # inner finally either way.
        try:
            subscribe = await self._connection_loop(
                engine, loop, session, reader, responses
            )
            if subscribe is not None:
                # Replication handover: flush the request/response
                # pipeline (the subscribe handshake rides out with it),
                # then the connection becomes a one-way record stream.
                responses.put_nowait(None)
                try:
                    await asyncio.wait_for(responder, timeout=self.drain_timeout)
                    drained = True
                except BaseException:
                    responder.cancel()
                    await asyncio.gather(responder, return_exceptions=True)
                    drained = False
                responder = None
                if drained:
                    await self._stream_replication(reader, writer, subscribe)
        except asyncio.CancelledError:
            pass
        finally:
            session.close()
            if responder is not None:
                responses.put_nowait(None)
                try:
                    await asyncio.wait_for(responder, timeout=self.drain_timeout)
                except BaseException:
                    # Timeout (wait_for already cancelled it), teardown
                    # cancellation, or a responder crash: make sure the
                    # task is cancelled AND awaited, so a slow client
                    # never leaks a responder still pending on its queue.
                    responder.cancel()
                    await asyncio.gather(responder, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except BaseException:
                pass
            if task is not None:
                self._connections.discard(task)

    async def _connection_loop(
        self, engine, loop, session, reader, responses
    ) -> None:
        """Read frames until EOF, dispatching each in request order.

        The per-connection in-flight count lives in a one-cell list
        mutated only on the loop thread: incremented at dispatch,
        decremented by each future's done callback (``call_soon`` runs
        those on the loop thread too), so it needs no lock.
        """
        inflight = [0]
        while True:
            if self.client_timeout is not None:
                try:
                    raw = await asyncio.wait_for(
                        self._read_line(reader), timeout=self.client_timeout
                    )
                except asyncio.TimeoutError:
                    # Stalled client: evict.  The finally in the handler
                    # closes the session, cancelling unflushed ops.
                    engine.stats.sessions_evicted += 1
                    break
            else:
                raw = await self._read_line(reader)
            if raw is None:
                break
            if raw == b"" or raw == b"\n":
                continue  # blank keep-alive line
            if self.faults is not None:
                rule = self.faults.network(NET_RECV, len(raw))
                if rule is not None:
                    if rule.action in ("stall", "delay"):
                        await asyncio.sleep(rule.delay)
                    else:
                        break  # injected disconnect after the read
            fut = loop.create_future()
            await responses.put(fut)
            try:
                request = decode_frame(raw)
            except ProtocolError as exc:
                engine.stats.protocol_errors += 1
                fut.set_result(error_response(str(exc)))
                continue
            op = request.get("op")
            if isinstance(op, str) and op.startswith("repl."):
                if op == "repl.subscribe":
                    # Off the loop: the handshake's base_lsn() poll (and
                    # a first access constructing the hub's WalTailer)
                    # re-reads the whole log after a compaction swap.
                    handshake = await loop.run_in_executor(
                        None, self._subscribe_handshake, request
                    )
                    fut.set_result(handshake)
                    if handshake.get("ok"):
                        # Hand the connection over to the record stream.
                        return request
                    continue
                if op in ("repl.manifest", "repl.fetch"):
                    self._dispatch_replication(loop, fut, request)
                    continue
                engine.stats.protocol_errors += 1
                fut.set_result(error_response(f"unknown op {op!r}", request))
                continue
            if op in _IMMEDIATE_OPS or (
                op == "estimate" and engine._is_weak(request)
            ):
                engine.stats.requests += 1
                self._dispatch_immediate(loop, fut, request, session)
                continue
            if (
                self.max_inflight is not None
                and inflight[0] >= self.max_inflight
            ):
                engine.stats.ops_rejected += 1
                fut.set_result(error_response(OverloadedError(
                    f"connection already has {inflight[0]} requests in "
                    f"flight (cap {self.max_inflight})",
                    retry_after_ms=50.0,
                ), request))
                continue
            inflight[0] += 1
            fut.add_done_callback(
                lambda _f: inflight.__setitem__(0, inflight[0] - 1)
            )
            try:
                engine.submit(
                    request,
                    session,
                    callback=lambda resp, f=fut: self._fulfil_threadsafe(
                        loop, f, resp
                    ),
                )
            except Exception as exc:
                self._fulfil(fut, exception_response(exc, request))

    @staticmethod
    def _fulfil(fut: "asyncio.Future", response: dict) -> None:
        if not fut.done():
            fut.set_result(response)

    @classmethod
    def _fulfil_threadsafe(cls, loop, fut: "asyncio.Future", response: dict) -> None:
        """Resolve a connection future from the writer thread.

        The loop may already be closed when an op outlives its server
        (teardown under drain_timeout, or engine.close flushing after
        server shutdown); the client is gone either way, so the
        response is simply dropped.
        """
        try:
            loop.call_soon_threadsafe(cls._fulfil, fut, response)
        except RuntimeError:
            pass

    def _dispatch_immediate(self, loop, fut, request: dict, session: Session) -> None:
        def work() -> dict:
            try:
                return self.engine._immediate(request, session)
            except Exception as exc:
                return error_response(str(exc), request)

        task = loop.run_in_executor(None, work)
        task.add_done_callback(
            lambda t: self._fulfil(fut, t.result() if t.exception() is None
                                   else exception_response(t.exception(), request))
        )

    async def _read_line(self, reader) -> Optional[bytes]:
        """One raw line, or ``None`` on EOF.

        The stream limit is double the protocol's line cap, so a line
        that is merely oversized (1-2 MB) still arrives whole and is
        refused by the decoder with the connection intact.  A line past
        the stream limit is unrecoverable mid-stream; it is answered
        with an error frame by the caller seeing ``OVERSIZED``.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            return exc.partial if exc.partial else None
        except asyncio.LimitOverrunError:
            # Drain up to the newline so the connection could in theory
            # continue, then surface one oversized-line error.
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk or b"\n" in chunk:
                    break
            return b" " * (MAX_LINE_BYTES + 1)  # forces an oversized-line error
        except ConnectionError:
            return None

    async def _respond(self, responses: "asyncio.Queue", writer) -> None:
        while True:
            fut = await responses.get()
            if fut is None:
                return
            response = await fut
            if not await self._send_frame(writer, response):
                return

    async def _send_frame(self, writer, response: dict) -> bool:
        """Write one frame, mediated by the NET_SEND fault point.

        Returns ``False`` when the connection is gone (injected or
        real); ``drain()`` per frame is the send-side backpressure --
        a slow reader stalls its own stream, nobody else's.
        """
        frame = encode_frame(response)
        if self.faults is not None:
            rule = self.faults.network(NET_SEND, len(frame))
            if rule is not None:
                if rule.action in ("stall", "delay"):
                    await asyncio.sleep(rule.delay)
                else:
                    # "torn" sends a strict prefix of the frame (no
                    # newline) before hanging up -- the mid-frame
                    # disconnect clients must detect and retry;
                    # "disconnect"/"error" hang up before a byte.
                    if rule.action == "torn" and len(frame) > 1:
                        cut = max(1, min(
                            len(frame) - 1,
                            int(len(frame) * rule.torn_fraction),
                        ))
                        try:
                            writer.write(frame[:cut])
                            await writer.drain()
                        except (ConnectionError, RuntimeError):
                            pass
                    try:
                        writer.close()
                    except Exception:
                        pass
                    return False
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            return False
        return True

    # -- replication streaming ---------------------------------------------

    def _subscribe_handshake(self, request: dict) -> dict:
        """Validate a ``repl.subscribe`` and build its handshake frame."""
        hub = self.engine.replication_hub
        if hub is None:
            return error_response(
                "replication requires a durable service (no WAL attached)",
                request,
            )
        from_lsn = request.get("from_lsn")
        if not isinstance(from_lsn, int) or isinstance(from_lsn, bool) or from_lsn < 0:
            self.engine.stats.protocol_errors += 1
            return error_response(
                'repl.subscribe needs an integer "from_lsn" >= 0', request
            )
        base = hub.base_lsn()
        if from_lsn < base:
            return error_response(
                StaleLsnError(
                    f"from_lsn {from_lsn} is below the compaction "
                    f"watermark {base}; re-bootstrap from a checkpoint"
                ),
                request,
            )
        response = {
            "ok": True,
            "op": "repl.subscribe",
            "from_lsn": from_lsn,
            "committed": hub.committed_lsn,
            "base": base,
        }
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _dispatch_replication(self, loop, fut, request: dict) -> None:
        """Run a manifest/fetch request on the executor (file I/O)."""

        def work() -> dict:
            try:
                # Resolved on the executor: a first access constructs
                # the hub (WalTailer over the whole log) off the loop.
                hub = self.engine.replication_hub
                if hub is None:
                    raise ValueError(
                        "replication requires a durable service "
                        "(no WAL attached)"
                    )
                if request["op"] == "repl.manifest":
                    out = {"ok": True, "op": "repl.manifest", **hub.manifest()}
                else:
                    out = {"ok": True, "op": "repl.fetch", **hub.read_chunk(
                        request.get("name"),
                        request.get("offset", 0),
                        request.get("limit"),
                    )}
                if "id" in request:
                    out["id"] = request["id"]
                return out
            except Exception as exc:
                return exception_response(exc, request)

        task = loop.run_in_executor(None, work)
        task.add_done_callback(
            lambda t: self._fulfil(fut, t.result() if t.exception() is None
                                   else exception_response(t.exception(), request))
        )

    async def _stream_replication(self, reader, writer, request: dict) -> None:
        """Ship committed records to one subscribed follower.

        The subscriber's cursor only moves forward, so a record is sent
        at most once per subscription even when ``compact()`` rewrites
        the log file underneath (the tailer rescans the new inode and
        the cursor skips everything already delivered).  When there is
        nothing to ship the stream waits on the commit notifier with a
        keepalive timeout, so followers can measure lag while idle and
        detect a dead primary.  Any further frame from the subscriber
        (a duplicate subscribe included) is refused and ends the
        stream; EOF ends it quietly.
        """
        engine = self.engine
        hub = engine.replication_hub
        loop = asyncio.get_running_loop()
        cursor = int(request["from_lsn"])
        wake = asyncio.Event()

        def _notify(_lsn: int) -> None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass

        stop = asyncio.Event()
        intruder: list = []

        async def _watch_client() -> None:
            # The record stream is one-way; the reader side only
            # detects EOF (clean unsubscribe) or protocol misuse.
            while True:
                raw = await self._read_line(reader)
                if raw is None:
                    stop.set()
                    return
                if raw in (b"", b"\n"):
                    continue
                intruder.append(raw)
                stop.set()
                return

        hub.add_subscriber(_notify)
        watcher = asyncio.create_task(_watch_client())
        stopper = asyncio.create_task(stop.wait())
        try:
            while not engine.shutdown_event.is_set() and not stop.is_set():
                batch = await loop.run_in_executor(None, hub.poll, cursor)
                if cursor < batch.base_lsn:
                    await self._send_frame(writer, error_response(
                        StaleLsnError(
                            f"resume point {cursor} fell below the "
                            f"compaction watermark {batch.base_lsn} "
                            "mid-stream; re-bootstrap from a checkpoint"
                        ),
                    ))
                    return
                sent_any = False
                for lsn, payload in batch.records:
                    if stop.is_set():
                        break
                    # A record larger than one line ships as a chunk
                    # sequence; the group is never torn mid-record by
                    # ``stop`` (it is at most a few frames long).
                    chunks = [
                        payload[i : i + REPL_RECORD_CHUNK_BYTES]
                        for i in range(0, len(payload), REPL_RECORD_CHUNK_BYTES)
                    ] or [payload]
                    for index, chunk in enumerate(chunks):
                        frame = {
                            "op": "repl.record",
                            "lsn": lsn,
                            "committed": hub.committed_lsn,
                            "raw": base64.b64encode(chunk).decode("ascii"),
                        }
                        if index + 1 < len(chunks):
                            frame["more"] = True
                        ok = await self._send_frame(writer, frame)
                        if not ok:
                            return
                    cursor = lsn
                    sent_any = True
                if sent_any:
                    continue  # drain everything available before waiting
                wake.clear()
                if hub.committed_lsn > cursor:
                    continue  # raced a commit between poll and clear
                waiter = asyncio.create_task(wake.wait())
                done, _pending = await asyncio.wait(
                    {waiter, stopper},
                    timeout=REPL_KEEPALIVE_SECONDS,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:  # idle: keepalive carries the lag signal
                    waiter.cancel()
                    await asyncio.gather(waiter, return_exceptions=True)
                    # base_lsn() polls the log (a full re-read after a
                    # compaction swap): keep it off the event loop.
                    base = await loop.run_in_executor(None, hub.base_lsn)
                    ok = await self._send_frame(writer, {
                        "op": "repl.keepalive",
                        "committed": hub.committed_lsn,
                        "base": base,
                    })
                    if not ok:
                        return
                elif waiter not in done:
                    waiter.cancel()
                    await asyncio.gather(waiter, return_exceptions=True)
            if intruder:
                await self._send_frame(writer, error_response(
                    "connection is a replication stream; further requests "
                    "(including duplicate repl.subscribe) are not accepted",
                ))
        finally:
            hub.remove_subscriber(_notify)
            for task in (watcher, stopper):
                task.cancel()
            await asyncio.gather(watcher, stopper, return_exceptions=True)


def parse_listen(value: str) -> tuple[str, int]:
    """``"PORT"`` or ``"HOST:PORT"`` -> ``(host, port)``."""
    host, _, port = value.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"malformed --listen address {value!r}") from None


def serve_forever(service, host: str = "127.0.0.1", port: int = 0, **engine_options):
    """Convenience constructor: engine + running TCP server."""
    engine = ServiceEngine(service, **engine_options)
    server = EstimationServer(engine, host=host, port=port)
    server.start()
    return engine, server


__all__ = [
    "EstimationServer",
    "EngineStats",
    "OpSpec",
    "ServiceEngine",
    "Session",
    "Ticket",
    "parse_listen",
    "serve_forever",
]
