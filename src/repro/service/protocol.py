"""Wire protocol of the concurrent serve tier.

One grammar, two encodings, shared by every entry point into the
service:

* the **frame codec** -- the network protocol is line-delimited JSON
  over TCP: each request is one UTF-8 JSON object on one line, each
  response is one JSON object on one line.  :func:`decode_frame` is the
  single defensive decoder (:class:`ProtocolError` for oversized lines,
  non-UTF-8 bytes, bare whitespace, malformed JSON, non-object
  payloads, missing/ill-typed ``op``), so a malformed client can never
  raise out of a connection handler;
* the **text command language** -- the ``serve`` stdin loop and the
  ``client`` subcommand speak the historical one-command-per-line
  language (``estimate <query>``, ``insert <parent-tag> <xml>``, ...).
  :func:`parse_text_command` translates a text line into the same
  request objects the network protocol carries, and
  :func:`format_text_response` renders a response back into the
  historical single-line replies, so both loops are thin clients over
  one dispatch path.

Request objects
---------------
Every request is ``{"op": <str>, ...}``; an optional ``"id"`` is echoed
back untouched (clients use it to match pipelined responses).  Update
targets are ``{"tag": t, "ordinal": k}`` (the *k*-th element with tag
``t`` in pre-order, 1-based, default 1) or ``{"index": i}`` (pre-order
index), resolved when the admission batch the op joins flushes.

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": msg}``.
``error`` is historically a plain string; *coded* failures -- the ones
a client is expected to branch on (``read_only``, ``overloaded``,
``shutting_down``) -- carry a structured object instead::

    {"ok": false, "error": {"code": "read_only", "message": "...",
                            "retryable": false}}

with an optional ``retry_after_ms`` hint on retryable codes.  See the
README's *Wire protocol* and *Failure modes* sections for the per-op
field tables and the full error-code table.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Union

#: Hard per-line bound for both the text loop and the network decoder:
#: a single oversized (or unterminated) line is refused as one error
#: instead of buffering without limit.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A malformed request line/frame; the connection stays usable."""


class CodedError(RuntimeError):
    """A failure clients branch on: serialised as a structured error.

    Subclasses fix ``code`` (stable, machine-readable) and
    ``retryable`` (whether the *same* request can be expected to
    succeed later without operator action).  ``retry_after_ms`` is an
    optional backoff hint shipped with retryable codes.
    """

    code = "error"
    retryable = False

    def __init__(self, message: str, *, retry_after_ms: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms

    def payload(self) -> dict:
        out: dict[str, Any] = {
            "code": self.code,
            "message": str(self),
            "retryable": self.retryable,
        }
        if self.retry_after_ms is not None:
            out["retry_after_ms"] = float(self.retry_after_ms)
        return out


class ReadOnlyError(CodedError):
    """Mutations refused: the service degraded to read-only after a
    storage fault; an operator ``resume`` re-admits writes."""

    code = "read_only"
    retryable = False


class OverloadedError(CodedError):
    """Admission refused fast: the queue (or the connection's in-flight
    budget) is at its high-water mark.  Retry after backing off."""

    code = "overloaded"
    retryable = True


class ShuttingDownError(CodedError):
    """The service is draining for shutdown; no new work is admitted."""

    code = "shutting_down"
    retryable = False


class StaleLsnError(CodedError):
    """A replication subscriber asked to resume below the log's
    compaction watermark: the records it needs were dropped, so it must
    re-bootstrap from a checkpoint instead of resuming the stream."""

    code = "stale_lsn"
    retryable = False


def error_code(response: dict) -> Optional[str]:
    """The machine-readable code of an error response (``None`` for
    ``ok`` responses and plain-string errors)."""
    error = response.get("error")
    if isinstance(error, dict):
        code = error.get("code")
        return str(code) if code is not None else None
    return None


def format_error(error) -> str:
    """One human-readable line for a response's ``error`` field,
    whichever shape (plain string or coded object) it has."""
    if isinstance(error, dict):
        message = error.get("message", "")
        code = error.get("code", "error")
        return f"{code}: {message}" if message else str(code)
    return str(error)


def decode_line(
    raw: Union[bytes, bytearray, str], *, max_bytes: int = MAX_LINE_BYTES
) -> str:
    """Defensively decode one raw command line.

    Accepts the bytes exactly as read off the stream (trailing
    newline included) or an already-decoded string.  Returns the
    stripped text -- ``""`` for a blank line, which the *text* loop
    skips and the *frame* decoder refuses.  Raises
    :class:`ProtocolError` for an oversized line (checked before
    decoding) or bytes that are not valid UTF-8.
    """
    if isinstance(raw, (bytes, bytearray)):
        if len(raw) > max_bytes:
            raise ProtocolError(
                f"line of {len(raw)} bytes exceeds the {max_bytes}-byte limit"
            )
        try:
            text = bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"line is not valid UTF-8 ({exc.reason})") from None
    else:
        text = raw
        if len(text.encode("utf-8", errors="surrogateescape")) > max_bytes:
            raise ProtocolError(
                f"line exceeds the {max_bytes}-byte limit"
            )
        try:
            text.encode("utf-8")
        except UnicodeEncodeError:
            # Surrogate escapes smuggled through a permissive stdin
            # decoder: the original bytes were not UTF-8.
            raise ProtocolError("line is not valid UTF-8") from None
    return text.strip()


def iter_raw_lines(stream, *, max_bytes: int = MAX_LINE_BYTES):
    """Yield raw byte lines from a binary stream, bounding memory.

    A line longer than ``max_bytes`` is *drained* (read and discarded
    up to its newline) and surfaced as a single over-limit line, so
    :func:`decode_line` reports it as one error instead of the reader
    buffering an unbounded line -- the stdin serve loop's defence
    against hostile or corrupt input.
    """
    while True:
        raw = stream.readline(max_bytes + 1)
        if not raw:
            return
        if len(raw) > max_bytes and not raw.endswith(b"\n"):
            while True:
                more = stream.readline(1 << 20)
                if not more or more.endswith(b"\n"):
                    break
        yield raw


def decode_frame(
    raw: Union[bytes, bytearray, str], *, max_bytes: int = MAX_LINE_BYTES
) -> dict:
    """Decode one network request frame into a request object.

    The frame must be one non-blank UTF-8 line holding one JSON object
    with a string ``"op"``; anything else raises
    :class:`ProtocolError` with a message fit to ship back in an error
    frame.
    """
    line = decode_line(raw, max_bytes=max_bytes)
    if not line:
        raise ProtocolError("empty frame (requests are one JSON object per line)")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON frame: {exc.msg}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError('frame is missing a string "op" field')
    return obj


def encode_frame(obj: dict) -> bytes:
    """One response/request object as one newline-terminated JSON line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def error_response(message, request: Optional[dict] = None) -> dict:
    """The error frame for a failed (or undecodable) request.

    ``message`` may be a plain string (historical errors), a
    :class:`CodedError` (serialised structurally), or an
    already-structured error dict (passed through).
    """
    if isinstance(message, CodedError):
        error: Union[str, dict] = message.payload()
    elif isinstance(message, dict):
        error = message
    else:
        error = str(message)
    response: dict[str, Any] = {"ok": False, "error": error}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def exception_response(exc: BaseException, request: Optional[dict] = None) -> dict:
    """The error frame for a raised exception, keeping codes intact."""
    if isinstance(exc, CodedError):
        return error_response(exc, request)
    return error_response(str(exc), request)


# -- text command language --------------------------------------------------

#: Commands whose reply depends on state the *session* owns (queue
#: depth, flush results); everything else formats directly from the
#: response object.
UPDATE_COMMANDS = ("insert", "delete")


def parse_text_command(line: str) -> dict:
    """Translate one serve-language line into a protocol request.

    Raises ``ValueError`` with the historical usage messages on a
    malformed command, and parses an insert's XML snippet eagerly so
    syntax errors are reported on the ``insert`` line itself (the
    snippet travels as text and is re-parsed when the admission batch
    flushes).
    """
    command, _, rest = line.partition(" ")
    rest = rest.strip()
    if command == "estimate":
        if not rest:
            raise ValueError("usage: estimate <query>")
        return {"op": "estimate", "query": rest, "strong": True}
    if command == "exact":
        if not rest:
            raise ValueError("usage: exact <query>")
        return {"op": "exact", "query": rest}
    if command == "execute":
        if not rest:
            raise ValueError("usage: execute <query>")
        return {"op": "execute", "query": rest}
    if command == "insert":
        tag, _, xml = rest.partition(" ")
        xml = xml.strip()
        if not tag or not xml:
            raise ValueError("usage: insert <parent-tag> <xml-snippet>")
        from repro.xmltree.parser import parse_document

        parse_document(xml)  # eager validation, historical behaviour
        return {"op": "insert", "parent": {"tag": tag, "ordinal": 1}, "xml": xml}
    if command == "delete":
        parts = rest.split()
        if not parts:
            raise ValueError("usage: delete <tag> [ordinal]")
        ordinal = int(parts[1]) if len(parts) > 1 else 1
        return {"op": "delete", "node": {"tag": parts[0], "ordinal": ordinal}}
    if command == "stats":
        return {"op": "stats"}
    if command == "save":
        if not rest:
            raise ValueError("usage: save <path.npz>")
        return {"op": "save", "path": rest}
    if command == "health":
        return {"op": "health"}
    if command == "resume":
        return {"op": "resume"}
    if command == "shutdown":
        return {"op": "shutdown"}
    raise ValueError(f"unknown command {command!r}")


def format_text_response(request: dict, response: dict) -> str:
    """Render a response object as the historical single-line reply."""
    if not response.get("ok", False):
        return f"error: {format_error(response.get('error', 'unknown failure'))}"
    op = request["op"]
    if op == "estimate":
        return f"estimate {response['value']:.2f}"
    if op == "exact":
        return f"exact {response['value']}"
    if op == "execute":
        return f"execute {response['rows']} rows cost={response['cost']:.2f}"
    if op in UPDATE_COMMANDS:
        return (
            f"ok {op} {response['nodes']} nodes "
            f"({'rebuild' if response['rebuilt'] else 'incremental'})"
        )
    if op == "stats":
        return (
            f"stats nodes={response['nodes']} "
            f"predicates={response['predicates']} "
            f"dirty={response['dirty']:.4f} "
            f"rebuilds={response['rebuilds']}"
        )
    if op == "save":
        return f"ok save {response['predicates']} predicates -> {response['path']}"
    if op == "health":
        line = (
            f"health {response['mode']} queue={response['queue_depth']} "
            f"epoch={response['epoch']} wal_lag={response['wal']['lag']}"
        )
        if "last_committed_lsn" in response:
            line += f" last_committed_lsn={response['last_committed_lsn']}"
        replication = response.get("replication")
        if isinstance(replication, dict):
            if replication.get("role") == "follower":
                lag_lsns = replication.get("replica_lag_lsns")
                lag_seconds = replication.get("replica_lag_seconds")
                line += (
                    f" replica_of={replication.get('primary')}"
                    f" replica_lag_lsns={lag_lsns}"
                )
                if lag_seconds is not None:
                    line += f" replica_lag_seconds={lag_seconds:.3f}"
                if not replication.get("connected", True):
                    line += " replica_disconnected"
            elif replication.get("role") == "primary":
                line += f" subscribers={replication.get('subscribers')}"
        return line
    if op == "resume":
        return f"ok resume {'resumed' if response.get('resumed') else 'already serving'}"
    if op == "shutdown":
        return "ok shutdown"
    return f"ok {op}"


def format_flush_response(result: dict) -> str:
    """The historical one-line reply for a completed admission flush."""
    return (
        f"ok batch {result['ops']} ops "
        f"+{result['nodes_inserted']}/-{result['nodes_deleted']} nodes "
        f"({'rebuild' if result['rebuilt'] else 'incremental'})"
    )
