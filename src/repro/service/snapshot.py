"""Snapshot-isolated readers over a live estimation service.

:meth:`~repro.service.service.EstimationService.snapshot` returns a
:class:`ServiceSnapshot`: an immutable view of the label table, the
predicate catalog, and every built histogram, against which readers can
estimate (and execute) without ever observing a half-applied update or
batch.  Snapshots **pin an epoch** (see :mod:`repro.histograms.epoch`):

* the **label arrays and the element list** are shared by reference --
  every maintenance path (splices, vectorised relabels, full rebuilds)
  *replaces* the containers on the live tree rather than mutating
  them, so a snapshot's references stay internally consistent forever;
* the catalog's per-predicate index arrays are shared the same way
  (index arrays are rebuilt, never written in place); the per-predicate
  stats rows are shallow-copied because the live side mutates those
  records -- O(#predicates), no per-node work;
* **histograms maintained by in-place cell deltas** (position
  histograms, the TRUE histogram) are pinned as epoch views
  (:meth:`~repro.histograms.position.PositionHistogram.snapshot_view`):
  the live overlay is sealed in O(1) and the view shares the frozen
  page and sealed layers by reference -- **zero per-cell copies**.
  Later maintenance writes a fresh overlay (and eventually a fresh
  page), never the pinned state.  Coverage/level histograms and
  coefficient kernels, which the live side replaces wholesale on
  invalidation, are shared;
* the pinned epoch is **refcounted** through the service's
  :class:`~repro.histograms.epoch.EpochRegistry`: sealed pages the
  live side has merged past are freed when the last snapshot of their
  epoch is released (:meth:`close`, the context-manager exit, or GC).

Construction cost is therefore O(#predicates) -- independent of the
tree size and of the histogram cell counts.  A snapshot taken *before*
an update keeps answering from the pre-update statistics, and a
snapshot taken *after*
:meth:`~repro.service.service.EstimationService.apply_batch` returns is
indistinguishable from a service freshly built over the post-batch
documents (the snapshot test suite pins both directions).  Snapshots
answer lazily like the live estimator: a predicate first touched
through the snapshot builds its histogram against the snapshot's frozen
label table and caches it snapshot-locally.

Known boundary (deliberately preserved across the epoch refactor, and
pinned by a test): snapshots freeze the *label table*, not the element
objects -- document-side children lists and text nodes are shared with
the live tree.  Estimates and executions over structural (tag)
predicates are fully isolated; a content predicate first scanned
through an old snapshot reads element text as it is *now*, not as it
was.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

from repro.engine.executor import PlanExecutor
from repro.estimation.estimator import AnswerSizeEstimator, Query
from repro.estimation.result import EstimationResult
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.position import PositionHistogram
from repro.labeling.interval import LabeledTree
from repro.optimizer.optimizer import Optimizer
from repro.predicates.base import Predicate
from repro.predicates.catalog import PredicateCatalog
from repro.query.pattern import PatternTree


class ServiceSnapshot:
    """A frozen, read-only view of one service state.

    Exposes the read API of the service (:meth:`estimate`,
    :meth:`estimate_many`, :meth:`execute`, :meth:`real_answer`,
    histogram accessors); construction performs no per-cell and no
    per-node copying.  Usable as a context manager; :meth:`close`
    releases the epoch pin (idempotent -- GC releases it too).
    """

    def __init__(self, service) -> None:
        tree = LabeledTree.shared_view(service.tree)
        catalog = PredicateCatalog(tree)
        catalog._stats = {
            predicate: replace(stats)
            for predicate, stats in service.catalog._stats.items()
        }
        if service.catalog._tag_indices is not None:
            catalog._tag_indices = dict(service.catalog._tag_indices)

        source = service.estimator
        estimator = AnswerSizeEstimator(
            tree, grid_size=source.grid.size, catalog=catalog
        )
        estimator.grid = source.grid  # same frozen bucket geometry object
        estimator.schema = source.schema
        estimator._true_hist = (
            source._true_hist.snapshot_view()
            if source._true_hist is not None
            else None
        )
        estimator._position_cache = {
            predicate: histogram.snapshot_view()
            for predicate, histogram in source._position_cache.items()
        }
        estimator._coverage_cache = dict(source._coverage_cache)
        estimator._level_cache = dict(source._level_cache)
        estimator._coefficient_cache = dict(source._coefficient_cache)

        self.tree = tree
        self.catalog = catalog
        self.estimator = estimator
        self.epoch = service.epoch
        pinned = list(estimator._position_cache.values())
        if estimator._true_hist is not None:
            pinned.append(estimator._true_hist)
        self._pin = service.epoch_registry.pin(service.epoch, pinned)
        self._optimizer: Optional[Optimizer] = None
        self._executor: Optional[PlanExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the epoch pin (idempotent, thread-safe).

        Once every snapshot of an epoch is closed, sealed pages the
        live service no longer references become unreachable and are
        freed.  The snapshot itself keeps answering (it still holds its
        own references); closing only ends its participation in the
        epoch refcount.  A double ``close()`` -- including a ``close()``
        after context-manager exit, or two racing closes on different
        threads -- decrements the registry's refcount exactly once
        (:meth:`~repro.histograms.epoch.EpochPin.release` claims its one
        release under the registry lock), so it can never free pages a
        *different* snapshot of the same epoch still pins.
        """
        self._pin.release()

    def __enter__(self) -> "ServiceSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- read API ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tree)

    def estimate(self, query: Query) -> EstimationResult:
        return self.estimator.estimate(query)

    def estimate_many(self, queries: Sequence[Query]) -> list[EstimationResult]:
        """Batched estimation with the PR 1 dedup/coefficient-cache
        path, against the frozen state."""
        return self.estimator.estimate_many(queries)

    def real_answer(self, query: Query) -> int:
        return self.estimator.real_answer(query)

    def position_histogram(self, predicate: Predicate) -> PositionHistogram:
        return self.estimator.position_histogram(predicate)

    def coverage_histogram(self, predicate: Predicate) -> Optional[CoverageHistogram]:
        return self.estimator.coverage_histogram(predicate)

    def execute(self, query: Union[str, PatternTree]):
        """Optimize and run a twig query against the frozen state.

        Returns the same :class:`~repro.service.service.ExecutionOutcome`
        shape as the live service.
        """
        from repro.service.service import ExecutionOutcome

        pattern = self.estimator._as_pattern(query)
        if self._optimizer is None:
            self._optimizer = Optimizer(self.estimator)
        if self._executor is None:
            self._executor = PlanExecutor(self.tree, self.catalog)
        choice = self._optimizer.choose_plan(pattern)
        bindings, stats = self._executor.execute(pattern, choice.best.plan)
        return ExecutionOutcome(choice=choice, bindings=bindings, stats=stats)
