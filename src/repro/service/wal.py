"""Durability for the estimation service: write-ahead log + checkpoints.

The online tier keeps every maintained structure bit-identical to a
from-scratch build while absorbing updates -- but only in memory.  This
module makes that state survive a crash, with the classic log-then-apply
discipline:

* every update batch is **normalized, serialised, and appended to an
  append-only log** (:class:`WriteAheadLog`) -- length-prefixed,
  CRC32-checksummed records -- and ``fsync``'d *before*
  ``apply_batch`` mutates any state.  After the batch applies, a
  ``commit`` marker is appended (``abort`` if the batch rolled back);
  markers ride to disk with the next record's fsync, which is safe
  because recovery treats an unmarked logged batch as redo work and a
  rolled-back batch leaves no state to redo;
* **periodic checkpoints** pair the versioned summary store
  (:func:`~repro.histograms.store.save_summary_pages`) with a state
  archive holding the serialized document forest, the exact label
  arrays (labels are path-dependent under gap allocation, so they
  cannot be re-derived from the documents), and the log sequence
  number (LSN) of the last batch the checkpoint covers.  Both sides
  are written as mmap-friendly **page files**
  (:mod:`repro.storage.pagefile`) by default -- checksummed,
  64-byte-aligned raw segments a warm start maps instead of
  decompressing -- while legacy ``.npz`` checkpoints keep loading
  transparently (and ``container="npz"`` keeps writing them);
* **recovery** (:func:`open_durable` via
  :meth:`~repro.service.service.EstimationService.open_durable`) loads
  the newest checkpoint whose files validate -- falling back to older
  ones on corruption -- and replays the log suffix through
  ``apply_batch``.  A torn or corrupted tail is detected by the
  checksum, cleanly truncated, and never replayed partially: a record
  either replays whole or not at all, so the recovered service is
  bit-identical to an uninterrupted run over the committed prefix.

Log format
----------

``wal.log`` starts with the 8-byte magic ``b"WPJWAL1\\n"`` followed by
records.  Each record is ``<u32 payload-length> <u32 crc32(payload)>
<payload>`` (little-endian); the payload is compact JSON::

    {"lsn": 7, "type": "batch", "single": false, "ops": [...]}
    {"lsn": 7, "type": "commit"}
    {"lsn": 7, "type": "abort"}

Batch ops are the normalized :class:`~repro.service.batch.InsertOp` /
:class:`~repro.service.batch.DeleteOp` forms.  Subtrees are serialized
as XML text; operation targets are encoded so replay resolves them with
exactly the live path's sequential semantics:

* ``["index", i]`` -- a raw integer target, interpreted against the
  tree as mutated by the batch's earlier operations (passed through);
* ``["node", i]`` -- an :class:`~repro.xmltree.tree.Element` handle
  that exists in the pre-batch tree, recorded as its pre-batch
  pre-order index and re-materialised as a handle before replay;
* ``["op", j, k]`` -- a handle into the subtree inserted by the
  batch's ``j``-th operation, at pre-order offset ``k``.

Checkpoints are ``ckpt-<lsn>.summaries.pgf`` (the binary summary
store) plus ``ckpt-<lsn>.state.pgf`` (documents + label arrays + meta)
-- or the legacy ``.npz`` pair; either spelling is accepted, and a
checkpoint exists only when one *complete* pair does.  The summary
store's document fingerprint must match the restored label table, so a
torn checkpoint write is never half-loaded.  Opening with
``lazy=True`` serves straight from the mapped page files: label
arrays and histogram pages are zero-copy mmap views, and the element
forest is decoded only if something actually touches it.
"""

from __future__ import annotations

import bisect
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.histograms.store import (
    SummaryFormatError,
    tree_fingerprint,
    tree_fingerprint_from_parts,
)
from repro.service.batch import BatchError, DeleteOp, InsertOp
from repro.storage.pagefile import (
    PageFile,
    encode_page_file,
    mapped_paths,
    open_array_container,
)
from repro.service.faults import (
    CKPT_FSYNC,
    CKPT_RENAME,
    CKPT_WRITE,
    DIR_FSYNC,
    WAL_FSYNC,
    WAL_WRITE,
    FaultPlan,
    fire,
)
from repro.xmltree.parser import parse_document
from repro.xmltree.tree import Document, Element, Text
from repro.xmltree.writer import write_document, write_node

WAL_MAGIC = b"WPJWAL1\n"
LOG_NAME = "wal.log"
CHECKPOINT_PREFIX = "ckpt-"
STATE_SUFFIX = ".state.npz"
SUMMARY_SUFFIX = ".summaries.npz"
PAGED_STATE_SUFFIX = ".state.pgf"
PAGED_SUMMARY_SUFFIX = ".summaries.pgf"
#: Default container for new checkpoints: ``"pagefile"`` (mmap-friendly
#: aligned segments) or ``"npz"`` (legacy compressed archives).  Either
#: kind loads transparently regardless of this setting.
CHECKPOINT_CONTAINER = "pagefile"
_CONTAINER_SUFFIXES = {
    "pagefile": (PAGED_STATE_SUFFIX, PAGED_SUMMARY_SUFFIX),
    "npz": (STATE_SUFFIX, SUMMARY_SUFFIX),
}
#: After this many consecutive delta checkpoints, the next one re-bases
#: (writes a full checkpoint) so old bases -- and the log records they
#: pin -- can be reclaimed by retention and compaction.
MAX_DELTA_CHAIN = 8
_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
# "base" is the compaction watermark: records at or below its lsn were
# dropped by compact(), so recovery must not fall back to a checkpoint
# older than it (the replay suffix those checkpoints need is gone).
_RECORD_TYPES = ("batch", "commit", "abort", "base")

# -- v2 binary payloads ------------------------------------------------------
#
# Outer framing is identical to v1 (<u32 len> <u32 crc32> <payload>), so
# offsets, torn-tail truncation, and byte-for-byte compaction work
# unchanged on mixed logs.  Payloads self-discriminate by first byte:
# 0x7B ("{") is a v1 JSON record, _V2_MARKER a binary v2 record,
# anything else is corruption.  A v2 payload is
#
#   <u8 marker> <u8 type> <i64 lsn>                      -- all records
#   <u8 flags> <u32 n_ops>                               -- batch only
#   op_kind  u8[n]    0=insert 1=delete
#   ref_kind u8[n]    0=["index",a] 1=["node",a] 2=["op",a,b]
#   ref_a    i64[n]
#   ref_b    i64[n]
#   position i64[n]   -1 = None
#   xml_off  i64[n+1] cumulative byte offsets into the xml blob
#   xml blob          concatenated utf-8 subtree texts (empty for deletes)
#
# i.e. raw little-endian array dumps -- no JSON round-trip, no
# per-field tokenization.
_V2_MARKER = 0xB2
_V2_HEAD = struct.Struct("<BBq")
_V2_BATCH_HEAD = struct.Struct("<BI")
_TARGET_KINDS = ("index", "node", "op")


def _encode_payload_v2(obj: dict) -> bytes:
    record_type = obj["type"]
    head = _V2_HEAD.pack(
        _V2_MARKER, _RECORD_TYPES.index(record_type), int(obj["lsn"])
    )
    if record_type != "batch":
        return head
    ops = obj["ops"]
    n = len(ops)
    op_kinds = np.empty(n, dtype=np.uint8)
    ref_kinds = np.empty(n, dtype=np.uint8)
    ref_a = np.zeros(n, dtype=np.int64)
    ref_b = np.zeros(n, dtype=np.int64)
    positions = np.full(n, -1, dtype=np.int64)
    lengths = np.zeros(n + 1, dtype=np.int64)
    chunks: list[bytes] = []
    for k, op in enumerate(ops):
        if op["kind"] == "insert":
            op_kinds[k] = 0
            ref = op["parent"]
            chunk = op["xml"].encode("utf-8")
            chunks.append(chunk)
            lengths[k + 1] = len(chunk)
            if op.get("position") is not None:
                positions[k] = op["position"]
        else:
            op_kinds[k] = 1
            ref = op["node"]
        ref_kinds[k] = _TARGET_KINDS.index(ref[0])
        ref_a[k] = ref[1]
        if len(ref) > 2:
            ref_b[k] = ref[2]
    flags = 1 if obj.get("single") else 0
    return b"".join(
        [
            head,
            _V2_BATCH_HEAD.pack(flags, n),
            op_kinds.tobytes(),
            ref_kinds.tobytes(),
            ref_a.tobytes(),
            ref_b.tobytes(),
            positions.tobytes(),
            np.cumsum(lengths).tobytes(),
            *chunks,
        ]
    )


class ColumnarOps:
    """Zero-copy view over a v2 batch record's operation columns.

    The original v2 decoder expanded every operation into a dict before
    anything looked at it; at replay scale that per-op Python loop
    dominated log reads.  This view keeps the columns as the numpy
    arrays sliced straight out of the (already CRC-checked) payload and
    materialises the dict spelling only on demand -- indexing,
    iteration, and equality all yield exactly the dicts the reference
    decoder produced, while the replay fast path in :func:`decode_ops`
    reads the columns directly and never asks for them.
    """

    __slots__ = (
        "op_kinds",
        "ref_kinds",
        "ref_a",
        "ref_b",
        "positions",
        "xml_offsets",
        "blob",
    )

    def __init__(
        self, op_kinds, ref_kinds, ref_a, ref_b, positions, xml_offsets, blob
    ):
        self.op_kinds = op_kinds
        self.ref_kinds = ref_kinds
        self.ref_a = ref_a
        self.ref_b = ref_b
        self.positions = positions
        self.xml_offsets = xml_offsets
        self.blob = blob

    def __len__(self) -> int:
        return len(self.op_kinds)

    def entry(self, k: int) -> dict:
        """Op ``k`` in the v1 dict spelling."""
        ref_kind = int(self.ref_kinds[k])
        a = int(self.ref_a[k])
        ref = (
            ["op", a, int(self.ref_b[k])]
            if ref_kind == 2
            else [_TARGET_KINDS[ref_kind], a]
        )
        if int(self.op_kinds[k]) == 0:
            position = int(self.positions[k])
            lo, hi = int(self.xml_offsets[k]), int(self.xml_offsets[k + 1])
            return {
                "kind": "insert",
                "parent": ref,
                "xml": self.blob[lo:hi].decode("utf-8"),
                "position": None if position < 0 else position,
            }
        return {"kind": "delete", "node": ref}

    def __getitem__(self, key):
        if isinstance(key, slice):
            return [self.entry(k) for k in range(len(self))[key]]
        return self.entry(range(len(self))[key])

    def __iter__(self):
        for k in range(len(self)):
            yield self.entry(k)

    def __eq__(self, other):
        if isinstance(other, ColumnarOps):
            other = list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarOps({list(self)!r})"


def _decode_payload_v2(payload: bytes) -> Optional[dict]:
    """Decode a v2 binary payload; ``None`` marks it corrupt (the
    framing CRC already passed, so this is defense in depth).

    Batch records come back with ``"ops"`` as a :class:`ColumnarOps`
    view -- validation is fully vectorized and no per-op objects are
    built here.  The view compares equal to (and iterates as) the
    dict list the reference decoder produces, pinned by the
    differential test against :func:`_decode_payload_v2_reference`.
    """
    try:
        marker, type_code, lsn = _V2_HEAD.unpack_from(payload, 0)
        if marker != _V2_MARKER or type_code >= len(_RECORD_TYPES):
            return None
        record_type = _RECORD_TYPES[type_code]
        if record_type != "batch":
            if len(payload) != _V2_HEAD.size:
                return None
            return {"lsn": lsn, "type": record_type}
        offset = _V2_HEAD.size
        flags, n = _V2_BATCH_HEAD.unpack_from(payload, offset)
        offset += _V2_BATCH_HEAD.size
        fixed = 2 * n + 8 * 3 * n + 8 * (n + 1)
        if offset + fixed > len(payload):
            return None
        op_kinds = np.frombuffer(payload, np.uint8, n, offset)
        offset += n
        ref_kinds = np.frombuffer(payload, np.uint8, n, offset)
        offset += n
        ref_a = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        ref_b = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        positions = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        xml_offsets = np.frombuffer(payload, np.int64, n + 1, offset)
        offset += 8 * (n + 1)
        blob = payload[offset:]
        if (
            (op_kinds > 1).any()
            or (ref_kinds > 2).any()
            or (n and int(xml_offsets[0]) != 0)
            or (np.diff(xml_offsets) < 0).any()
            or int(xml_offsets[-1]) != len(blob)
        ):
            return None
        return {
            "lsn": lsn,
            "type": "batch",
            "single": bool(flags & 1),
            "ops": ColumnarOps(
                op_kinds, ref_kinds, ref_a, ref_b, positions, xml_offsets, blob
            ),
        }
    except (struct.error, UnicodeDecodeError, ValueError):
        return None


def _decode_payload_v2_reference(payload: bytes) -> Optional[dict]:
    """Pre-vectorization per-op decoder, kept as the bit-identity
    reference the differential tests pin :func:`_decode_payload_v2`
    against (mixed v1/v2 logs, every record type)."""
    try:
        marker, type_code, lsn = _V2_HEAD.unpack_from(payload, 0)
        if marker != _V2_MARKER or type_code >= len(_RECORD_TYPES):
            return None
        record_type = _RECORD_TYPES[type_code]
        if record_type != "batch":
            if len(payload) != _V2_HEAD.size:
                return None
            return {"lsn": lsn, "type": record_type}
        offset = _V2_HEAD.size
        flags, n = _V2_BATCH_HEAD.unpack_from(payload, offset)
        offset += _V2_BATCH_HEAD.size
        fixed = 2 * n + 8 * 3 * n + 8 * (n + 1)
        if offset + fixed > len(payload):
            return None
        op_kinds = np.frombuffer(payload, np.uint8, n, offset)
        offset += n
        ref_kinds = np.frombuffer(payload, np.uint8, n, offset)
        offset += n
        ref_a = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        ref_b = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        positions = np.frombuffer(payload, np.int64, n, offset)
        offset += 8 * n
        xml_offsets = np.frombuffer(payload, np.int64, n + 1, offset)
        offset += 8 * (n + 1)
        blob = payload[offset:]
        if (
            (op_kinds > 1).any()
            or (ref_kinds > 2).any()
            or (n and int(xml_offsets[0]) != 0)
            or (np.diff(xml_offsets) < 0).any()
            or int(xml_offsets[-1]) != len(blob)
        ):
            return None
        ops: list[dict] = []
        offs = xml_offsets.tolist()
        for k, (op_kind, ref_kind, a, b, position) in enumerate(
            zip(
                op_kinds.tolist(),
                ref_kinds.tolist(),
                ref_a.tolist(),
                ref_b.tolist(),
                positions.tolist(),
            )
        ):
            ref = (
                ["op", a, b]
                if ref_kind == 2
                else [_TARGET_KINDS[ref_kind], a]
            )
            if op_kind == 0:
                ops.append(
                    {
                        "kind": "insert",
                        "parent": ref,
                        "xml": blob[offs[k] : offs[k + 1]].decode("utf-8"),
                        "position": None if position < 0 else position,
                    }
                )
            else:
                ops.append({"kind": "delete", "node": ref})
        return {
            "lsn": lsn,
            "type": "batch",
            "single": bool(flags & 1),
            "ops": ops,
        }
    except (struct.error, UnicodeDecodeError, ValueError):
        return None


def _encode_record_payload(obj: dict, codec: str) -> bytes:
    if codec == "binary":
        return _encode_payload_v2(obj)
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


class WalError(RuntimeError):
    """The durable directory cannot be recovered (no valid checkpoint)."""


@dataclass
class WalRecord:
    """One decoded log record with its byte extent in the file."""

    lsn: int
    type: str
    payload: dict
    offset: int
    end_offset: int


@dataclass
class RecoveryInfo:
    """What one :func:`open_durable` recovery did."""

    checkpoint_lsn: int
    batches_replayed: int
    batches_skipped: int
    truncated_bytes: int
    next_lsn: int


# -- log reading -------------------------------------------------------------


def decode_payload(payload: bytes) -> Optional[dict]:
    """Decode one record payload (v1 JSON or v2 binary) to its record
    object, or ``None`` when it is neither -- the self-discrimination
    every log reader and the replication stream share."""
    if payload[:1] == b"{":  # v1 JSON payload
        try:
            obj = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(obj, dict)
            or not isinstance(obj.get("lsn"), int)
            or obj.get("type") not in _RECORD_TYPES
        ):
            return None
        return obj
    if payload[:1] == bytes([_V2_MARKER]):  # v2 binary payload
        return _decode_payload_v2(payload)
    return None


def _parse_records(
    data: bytes, offset: int
) -> tuple[list[WalRecord], int]:
    """Decode intact records of a log image starting at ``offset``;
    stops at the first torn or corrupted record (the crash tail)."""
    records: list[WalRecord] = []
    while True:
        if offset + _HEADER.size > len(data):
            break
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        obj = decode_payload(payload)
        if obj is None:
            break
        records.append(WalRecord(obj["lsn"], obj["type"], obj, offset, end))
        offset = end
    return records, offset


def read_records(path: Union[str, Path]) -> tuple[list[WalRecord], int]:
    """Decode every intact record of a log file.

    Returns ``(records, valid_end)``: the records whose length prefix,
    checksum, and payload all validate, in file order, and the byte
    offset one past the last of them.  Decoding stops at the first torn
    or corrupted record -- everything from there on is the crash tail
    and must be truncated, never partially replayed.  A missing file or
    a torn magic header yields ``([], 0)``.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    if len(data) < len(WAL_MAGIC) or not data.startswith(WAL_MAGIC):
        return [], 0
    return _parse_records(data, len(WAL_MAGIC))


class WriteAheadLog:
    """Append-only, checksummed log of update batches.

    Opening an existing log truncates any torn tail (detected by
    :func:`read_records`) so appends continue from the last intact
    record; opening a fresh path writes the magic header.  ``append``
    of a batch record is fsync'd before returning -- that is the
    durability point the service relies on; commit/abort markers are
    flushed but ride to disk with the next fsync.
    """

    def __init__(
        self,
        path: Union[str, Path],
        scanned: Optional[tuple[list[WalRecord], int]] = None,
        codec: str = "binary",
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if codec not in ("binary", "json"):
            raise ValueError(f"unknown WAL codec {codec!r}")
        self.path = Path(path)
        self.codec = codec
        #: Fault-injection plan consulted before every write/fsync
        #: (``None`` = no injection; see :mod:`repro.service.faults`).
        self.faults = faults
        # Frames of unsynced markers, held in process until the next
        # fsync'd append (group commit): one buffered write per batch
        # instead of one OS write per logical record.
        self._pending = bytearray()
        records, valid_end = (
            scanned if scanned is not None else read_records(self.path)
        )
        # LSN 0 is reserved for the directory's initial checkpoint (the
        # pre-update state), so the first logged batch is LSN 1.
        self.next_lsn = max((r.lsn for r in records), default=0) + 1
        if self.path.exists() and valid_end > 0:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
            self._fh = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
            self._fh.write(WAL_MAGIC)
            self._sync()

    def _append(self, obj: dict, sync: bool) -> None:
        payload = _encode_record_payload(obj, self.codec)
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if not sync:
            # Markers only need to be durable by the *next* fsync (an
            # unmarked logged batch is redo work either way), so they
            # ride in the same write as the next synced record.
            self._pending += frame
            return
        if self._pending:
            frame = bytes(self._pending) + frame
            self._pending.clear()
        self._write(frame)
        self._sync()

    def _write(self, frame: bytes) -> None:
        """One log write, mediated by the fault plan: an injected torn
        write puts a strict prefix on disk (the crash-tail shape
        recovery truncates) before the error surfaces."""
        if self.faults is not None:
            data, fault = self.faults.intercept_write(WAL_WRITE, frame)
            if fault is not None:
                if data:
                    self._fh.write(data)
                    try:
                        self._fh.flush()
                    except OSError:  # pragma: no cover - double fault
                        pass
                raise fault
        self._fh.write(frame)

    def _flush_pending(self) -> None:
        if self._pending:
            self._write(bytes(self._pending))
            self._pending.clear()

    def _sync(self) -> None:
        fire(self.faults, WAL_FSYNC)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def log_batch(self, encoded_ops: list[dict], single: bool = False) -> int:
        """Durably append a batch record; returns its LSN.

        The record is fsync'd before this returns -- nothing of the
        batch may mutate service state until then.
        """
        lsn = self.next_lsn
        self.next_lsn += 1
        self._append(
            {"lsn": lsn, "type": "batch", "single": single, "ops": encoded_ops},
            sync=True,
        )
        return lsn

    def append_raw(self, payload: bytes, lsn: int, sync: bool = False) -> None:
        """Append an already-encoded record payload verbatim.

        The replication path ships the primary's record payload bytes
        unchanged; appending them verbatim keeps the follower's log a
        byte-exact suffix copy, so follower recovery is *the same code
        path* as primary recovery.  ``lsn`` is the payload's own LSN and
        only advances ``next_lsn``.  Followers default to ``sync=False``:
        a torn tail is truncated on restart and re-shipped from the
        resume LSN, so per-record fsync buys nothing.
        """
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if self._pending:
            frame = bytes(self._pending) + frame
            self._pending.clear()
        self._write(frame)
        if sync:
            self._sync()
        self.next_lsn = max(self.next_lsn, lsn + 1)

    def mark_committed(self, lsn: int) -> None:
        """Record that the batch applied (buffered; see class docs)."""
        self._append({"lsn": lsn, "type": "commit"}, sync=False)

    def mark_aborted(self, lsn: int) -> None:
        """Record that the batch rolled back and must not be replayed."""
        self._append({"lsn": lsn, "type": "abort"}, sync=True)

    def sync(self) -> None:
        """Force every buffered marker to disk (checkpoint prologue)."""
        self._flush_pending()
        self._sync()

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._flush_pending()
            self._sync()
            self._fh.close()


@dataclass
class TailBatch:
    """One :meth:`WalTailer.poll` result.

    ``records`` holds ``(lsn, payload_bytes)`` pairs for committed batch
    records strictly above the caller's cursor, in LSN order; the
    payload bytes are shipped verbatim so followers append a byte-exact
    copy.  ``base_lsn`` is the log's current compaction watermark: a
    subscriber whose cursor is below it can no longer be served from
    this log and must re-bootstrap from a checkpoint.
    """

    base_lsn: int
    last_lsn: int
    records: list[tuple[int, bytes]]


class WalTailer:
    """LSN-addressed tailing reader over a live (or dead) log file.

    Re-parses only the newly appended suffix on each poll, and falls
    back to a full rescan whenever the file was swapped (``compact()``
    replaces the inode) or shrank (resume truncation).  Every shipped
    record is a whole, CRC-validated frame -- a torn or mid-copy tail
    simply isn't shipped yet -- and the per-call ``after_lsn`` cursor
    means a record is delivered at most once to a given subscriber even
    across a compaction that rewrites the file around it.

    Thread-safe: concurrent subscribers poll through one shared lock.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._reset()

    def _reset(self) -> None:
        self._buf = b""
        self._valid_end = 0
        self._ino: Optional[int] = None
        self._base = 0
        self._aborted: set[int] = set()
        self._commits: set[int] = set()
        self._batch_lsns: list[int] = []
        self._batches: list[WalRecord] = []

    def _ingest(self, records: list[WalRecord]) -> None:
        for record in records:
            if record.type == "batch":
                self._batch_lsns.append(record.lsn)
                self._batches.append(record)
            elif record.type == "commit":
                self._commits.add(record.lsn)
            elif record.type == "abort":
                self._aborted.add(record.lsn)
            elif record.type == "base":
                self._base = max(self._base, record.lsn)

    def _refresh(self) -> None:
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            self._reset()
            return
        if (
            self._ino is not None
            and st.st_ino == self._ino
            and st.st_size == len(self._buf)
        ):
            return
        if self._ino is None or st.st_ino != self._ino or st.st_size < len(self._buf):
            # Swapped (compaction) or truncated (resume): rescan whole.
            try:
                with open(self.path, "rb") as fh:
                    ino = os.fstat(fh.fileno()).st_ino
                    data = fh.read()
            except FileNotFoundError:
                self._reset()
                return
            self._reset()
            self._ino = ino
            if not data.startswith(WAL_MAGIC):
                return
            self._buf = data
            records, self._valid_end = _parse_records(data, len(WAL_MAGIC))
            self._ingest(records)
            return
        # Same inode, grew: read and parse just the appended suffix.
        with open(self.path, "rb") as fh:
            if os.fstat(fh.fileno()).st_ino != self._ino:
                # Swapped between stat and open; next poll rescans.
                return
            fh.seek(len(self._buf))
            suffix = fh.read()
        self._buf += suffix
        records, self._valid_end = _parse_records(self._buf, self._valid_end)
        self._ingest(records)

    def poll(
        self,
        after_lsn: int,
        committed_floor: Optional[int] = None,
        limit: int = 256,
    ) -> TailBatch:
        """Return committed batch records with ``after_lsn < lsn``.

        ``committed_floor`` is the caller's authoritative committed LSN
        (the primary's in-process ``_last_lsn``); commit markers in the
        file lag it because they are group-committed.  When ``None``,
        only records with an on-disk commit marker ship -- the offline
        tail mode.  Abort-marked records never ship.
        """
        with self._lock:
            self._refresh()
            out: list[tuple[int, bytes]] = []
            start = bisect.bisect_right(self._batch_lsns, after_lsn)
            last = self._batch_lsns[-1] if self._batch_lsns else 0
            for record in self._batches[start:]:
                if len(out) >= limit:
                    break
                if record.lsn in self._aborted:
                    continue
                if committed_floor is not None:
                    if record.lsn > committed_floor:
                        break
                elif record.lsn not in self._commits:
                    break
                payload = self._buf[
                    record.offset + _HEADER.size : record.end_offset
                ]
                out.append((record.lsn, payload))
            return TailBatch(base_lsn=self._base, last_lsn=last, records=out)


# -- op (de)serialisation ----------------------------------------------------


def encode_ops(service, plan: Sequence[Union[InsertOp, DeleteOp]]) -> list[dict]:
    """Serialise a normalized batch against the service's pre-batch tree.

    Must run before any operation mutates the tree: element handles are
    resolved through the *current* numbering, and subtrees are written
    out while still detached.
    """
    tree = service.tree
    inserted: dict[int, tuple[int, int]] = {}
    out: list[dict] = []
    for op_index, op in enumerate(plan):
        if isinstance(op, InsertOp):
            if op.subtree.parent is not None:
                raise ValueError(
                    "subtree to insert must be detached (parent is None)"
                )
            out.append(
                {
                    "kind": "insert",
                    "parent": _encode_target(tree, op.parent, inserted),
                    "xml": write_node(op.subtree),
                    "position": None if op.position is None else int(op.position),
                }
            )
            for local, element in enumerate(op.subtree.iter()):
                inserted[id(element)] = (op_index, local)
        else:
            out.append(
                {"kind": "delete", "node": _encode_target(tree, op.node, inserted)}
            )
    return out


def _encode_target(tree, target, inserted: dict[int, tuple[int, int]]):
    if not isinstance(target, Element):
        return ["index", int(target)]
    slot = inserted.get(id(target))
    if slot is not None:
        return ["op", slot[0], slot[1]]
    try:
        return ["node", tree.index_of(target)]
    except KeyError:
        raise ValueError(
            "operation targets an element not in the tree"
        ) from None


def decode_ops(service, entries: Sequence[dict]) -> list[Union[InsertOp, DeleteOp]]:
    """Rebuild a replayable batch from its logged form.

    Runs against the recovered pre-batch tree; ``["node", i]`` refs
    re-materialise as element handles so the batch applier tracks them
    through earlier splices exactly as it did live.
    """
    if isinstance(entries, ColumnarOps):
        return _decode_ops_columnar(service, entries)
    tree = service.tree
    subtrees: list[Optional[list[Element]]] = []
    ops: list[Union[InsertOp, DeleteOp]] = []
    for entry in entries:
        if entry["kind"] == "insert":
            subtree = _parse_subtree(entry["xml"])
            ops.append(
                InsertOp(
                    _decode_target(tree, entry["parent"], subtrees),
                    subtree,
                    entry.get("position"),
                )
            )
            subtrees.append(list(subtree.iter()))
        else:
            ops.append(DeleteOp(_decode_target(tree, entry["node"], subtrees)))
            subtrees.append(None)
    return ops


def _decode_ops_columnar(service, cols: ColumnarOps) -> list[Union[InsertOp, DeleteOp]]:
    """Replay fast path over a v2 record's columns: one ``tolist`` per
    column instead of a dict per op.  Targets resolve *before* the op's
    subtree joins the lookup list, preserving the op-reference ordering
    semantics of the dict path (an op can only reference earlier ops).
    """
    tree = service.tree
    subtrees: list[Optional[list[Element]]] = []
    ops: list[Union[InsertOp, DeleteOp]] = []
    offs = cols.xml_offsets.tolist()
    blob = cols.blob
    for k, (op_kind, ref_kind, a, b, position) in enumerate(
        zip(
            cols.op_kinds.tolist(),
            cols.ref_kinds.tolist(),
            cols.ref_a.tolist(),
            cols.ref_b.tolist(),
            cols.positions.tolist(),
        )
    ):
        if ref_kind == 0:
            target = a
        elif ref_kind == 1:
            target = tree.elements[a]
        else:
            nodes = subtrees[a]
            if nodes is None:
                raise ValueError(
                    f"logged target references a delete op: {['op', a, b]!r}"
                )
            target = nodes[b]
        if op_kind == 0:
            subtree = _parse_subtree(blob[offs[k] : offs[k + 1]].decode("utf-8"))
            ops.append(
                InsertOp(target, subtree, None if position < 0 else position)
            )
            subtrees.append(list(subtree.iter()))
        else:
            ops.append(DeleteOp(target))
            subtrees.append(None)
    return ops


def _decode_target(tree, ref, subtrees: list[Optional[list[Element]]]):
    kind = ref[0]
    if kind == "index":
        return int(ref[1])
    if kind == "node":
        return tree.elements[int(ref[1])]
    if kind == "op":
        nodes = subtrees[int(ref[1])]
        if nodes is None:
            raise ValueError(f"logged target references a delete op: {ref!r}")
        return nodes[int(ref[2])]
    raise ValueError(f"unknown logged target kind {ref!r}")


def _parse_subtree(xml: str) -> Element:
    snippet = parse_document(xml)
    subtree = snippet.root_element
    snippet.children.remove(subtree)
    subtree.parent = None
    return subtree


# -- checkpoints -------------------------------------------------------------


def _checkpoint_pairs(
    directory: Union[str, Path], lsn: int
) -> dict[str, tuple[Path, Path]]:
    """Candidate ``(state, summary)`` pairs for ``lsn`` per container,
    in resolution preference order (pagefile before legacy npz)."""
    stem = f"{CHECKPOINT_PREFIX}{lsn:016d}"
    directory = Path(directory)
    return {
        container: (
            directory / (stem + state_suffix),
            directory / (stem + summary_suffix),
        )
        for container, (state_suffix, summary_suffix) in _CONTAINER_SUFFIXES.items()
    }


def checkpoint_paths(
    directory: Union[str, Path], lsn: int, container: Optional[str] = None
) -> tuple[Path, Path]:
    """The ``(state, summary)`` paths of checkpoint ``lsn``.

    An explicit ``container`` names that pair unconditionally (the
    write path uses this).  With ``container=None`` the first
    *complete* on-disk pair wins, pagefile preferred -- so readers
    resolve whatever spelling a checkpoint was actually written in --
    and when neither pair is complete, the default-container pair is
    returned (the target of a checkpoint about to be written).
    """
    pairs = _checkpoint_pairs(directory, lsn)
    if container is not None:
        return pairs[container]
    for pair in pairs.values():
        if pair[0].exists() and pair[1].exists():
            return pair
    return pairs[CHECKPOINT_CONTAINER]


def list_checkpoints(directory: Union[str, Path]) -> list[int]:
    """LSNs of the directory's complete checkpoints, newest first.

    A checkpoint is complete only when **one complete canonical pair**
    (state + summaries, in the same container) exists -- pagefile and
    legacy ``.npz`` both count, and an incomplete pair in one container
    never masks a complete pair in the other.  The glob may surface
    stray files whose name parses to an LSN but is not the canonical
    ``%016d`` spelling; requiring the canonical paths (rather than
    trusting the globbed path for one half) keeps such strays -- and a
    crash that renamed only one half -- from ever being offered to
    recovery.
    """
    directory = Path(directory)
    lsns: set[int] = set()
    for state_suffix in (PAGED_STATE_SUFFIX, STATE_SUFFIX):
        for path in directory.glob(f"{CHECKPOINT_PREFIX}*{state_suffix}"):
            raw = path.name[len(CHECKPOINT_PREFIX) : -len(state_suffix)]
            if not raw.isdigit():
                continue
            lsn = int(raw)
            if lsn in lsns:
                continue
            for state_path, summary_path in _checkpoint_pairs(
                directory, lsn
            ).values():
                if state_path.exists() and summary_path.exists():
                    lsns.add(lsn)
                    break
    return sorted(lsns, reverse=True)


def _encode_forest(documents, tree) -> tuple[dict, dict]:
    """Numpy-native encoding of the document forest, aligned with the
    label table's pre-order: tag codes, attribute map, and text nodes
    with their exact child slots.

    Recovery rebuilds the ``Element`` objects directly from these
    arrays instead of tokenizing the serialized XML -- an order of
    magnitude faster at checkpoint scale, and the reason
    replay-from-checkpoint beats rebuild-from-documents.  Document-level
    text nodes (which XML cannot round-trip) are encoded with negative
    owner indices: ``owner = -(doc_index + 1)``.
    """
    elements = tree.elements
    vocab: dict[str, int] = {}
    codes = np.empty(len(elements), dtype=np.int64)
    attributes: dict[str, dict] = {}
    text_owner: list[int] = []
    text_slot: list[int] = []
    text_chunks: list[bytes] = []
    for index, element in enumerate(elements):
        codes[index] = vocab.setdefault(element.tag, len(vocab))
        if element.attributes:
            attributes[str(index)] = dict(element.attributes)
        for slot, child in enumerate(element.children):
            if isinstance(child, Text):
                text_owner.append(index)
                text_slot.append(slot)
                text_chunks.append(child.value.encode("utf-8"))
    for doc_index, document in enumerate(documents):
        for slot, child in enumerate(document.children):
            if isinstance(child, Text):
                text_owner.append(-(doc_index + 1))
                text_slot.append(slot)
                text_chunks.append(child.value.encode("utf-8"))
    offsets = np.zeros(len(text_chunks) + 1, dtype=np.int64)
    if text_chunks:
        offsets[1:] = np.cumsum([len(chunk) for chunk in text_chunks])
    arrays = {
        "fast.tags": codes,
        "fast.text_owner": np.asarray(text_owner, dtype=np.int64),
        "fast.text_slot": np.asarray(text_slot, dtype=np.int64),
        "fast.text_offsets": offsets,
        "fast.text_data": np.frombuffer(b"".join(text_chunks), dtype=np.uint8)
        if text_chunks
        else np.empty(0, dtype=np.uint8),
    }
    meta = {
        "tag_vocab": [tag for tag, _ in sorted(vocab.items(), key=lambda kv: kv[1])],
        "attributes": attributes,
        "doc_roots": [
            sum(1 for child in document.children if isinstance(child, Element))
            for document in documents
        ],
    }
    return arrays, meta


def _decode_forest(archive, fast_meta, parent_index):
    """Inverse of :func:`_encode_forest`: the documents plus the
    pre-order element list (identity-aligned with the label table)."""
    from repro.utils.arrays import group_by_code

    vocab = fast_meta["tag_vocab"]
    codes = archive["fast.tags"]
    elements = [Element(vocab[int(code)]) for code in codes.tolist()]
    for raw_index, attrs in fast_meta["attributes"].items():
        elements[int(raw_index)].attributes = dict(attrs)
    # Children grouped per parent in one argsort pass, then attached
    # with bulk list assignment instead of a per-node append call.
    parent_array = np.asarray(parent_index, dtype=np.int64)
    roots = [elements[i] for i in np.flatnonzero(parent_array < 0).tolist()]
    for parent, slots in group_by_code(parent_array).items():
        if parent < 0:
            continue
        parent_element = elements[parent]
        children = [elements[i] for i in slots.tolist()]
        for child in children:
            child.parent = parent_element
        parent_element.children = children
    text_owner = archive["fast.text_owner"].tolist()
    text_slot = archive["fast.text_slot"].tolist()
    offsets = archive["fast.text_offsets"].tolist()
    blob = bytes(archive["fast.text_data"])
    for k, (owner, slot) in enumerate(zip(text_owner, text_slot)):
        if owner < 0:
            continue  # document-level: attached once documents exist
        node = Text(blob[offsets[k] : offsets[k + 1]].decode("utf-8"))
        owner_element = elements[owner]
        node.parent = owner_element
        owner_element.children.insert(slot, node)
    documents = []
    cursor = 0
    for count in fast_meta["doc_roots"]:
        document = Document()
        for root in roots[cursor : cursor + count]:
            document.append(root)
        cursor += count
        documents.append(document)
    if cursor != len(roots):
        raise SummaryFormatError(
            f"checkpoint forest has {len(roots)} roots but the document "
            f"layout covers {cursor}"
        )
    for k, (owner, slot) in enumerate(zip(text_owner, text_slot)):
        if owner >= 0:
            continue
        node = Text(blob[offsets[k] : offsets[k + 1]].decode("utf-8"))
        document = documents[-owner - 1]
        node.parent = document
        document.children.insert(slot, node)
    return documents, elements


def _fsync_path(path: Path, faults: Optional[FaultPlan] = None) -> None:
    """Force a file's contents to stable storage."""
    fire(faults, CKPT_FSYNC)
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_directory(directory: Path, faults: Optional[FaultPlan] = None) -> None:
    """Force directory entries (renames) to stable storage; best-effort
    on platforms that cannot fsync a directory handle.  An *injected*
    failure raises (the hardening under test is the caller's reaction
    to a device that reports the error instead of eating it)."""
    fire(faults, DIR_FSYNC)
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _numerator_arrays(service) -> tuple[list[str], dict[str, np.ndarray]]:
    """Maintained coverage numerators (integer pair counts) as archive
    members.  They are part of the recoverable state: without them the
    first replayed batch would re-walk the tree once per maintained
    coverage.  Only tag predicates round-trip (matching the summary
    store's policy)."""
    from repro.predicates.base import TagPredicate

    numerator_tags: list[str] = []
    numerator_arrays: dict[str, np.ndarray] = {}
    for predicate, numerators in service._numerators.items():
        if not isinstance(predicate, TagPredicate):
            continue
        slot = len(numerator_tags)
        numerator_tags.append(predicate.tag)
        # Sorted code order equals sorted tuple-key order, so the
        # archive bytes match what the per-entry encoder produced.
        numerator_arrays[f"cvgnum{slot}.keys"] = numerators.quad_array()
        numerator_arrays[f"cvgnum{slot}.counts"] = np.asarray(
            numerators.counts, dtype=np.int64
        )
    return numerator_tags, numerator_arrays


def _base_meta(service, lsn: int, numerator_tags: list[str]) -> dict:
    return {
        "lsn": lsn,
        "spacing": service.spacing,
        "grid_size": service.grid_size,
        "grid_kind": service.grid_kind,
        "rebuild_threshold": service.rebuild_threshold,
        "max_label": int(service.tree.max_label),
        "dirty_nodes": int(service._dirty_nodes),
        "documents": len(service.documents),
        "coverage_numerators": numerator_tags,
    }


def _encode_state_delta(service, base_lsn: int, base_nodes: int) -> tuple[dict, dict]:
    """Delta encoding of the current state against the last *full*
    checkpoint, driven by the service's splice tracker.

    Gap labeling guarantees that between full relabels a surviving
    node's start/end/level never change and its text/attributes are
    never touched by the service's update API, so the delta is:

    * ``incr.runs`` -- ``(current_start, base_start, length)`` triples
      mapping maximal contiguous surviving ranges back to the base
      checkpoint (label values, tags, text, and attributes of those
      nodes are *not* re-archived);
    * per net-inserted node: its labels, its parent's current index,
      its exact child slot in the parent's children list (text nodes
      included, so reconstruction reproduces the live layout
      bit-exactly), tag/attributes, and owned text.

    Net-deleted base nodes need no encoding: reconstruction derives
    them as the base indices not covered by any run and detaches each
    deleted root from its surviving parent (or document).
    """
    tree = service.tree
    tracker = service._ckpt_tracker
    survivors = np.flatnonzero(tracker >= 0)
    base_idx = tracker[survivors]
    if survivors.size:
        breaks = (
            np.flatnonzero((np.diff(survivors) != 1) | (np.diff(base_idx) != 1)) + 1
        )
        starts = np.concatenate([np.zeros(1, dtype=np.int64), breaks])
        ends = np.concatenate([breaks, np.asarray([survivors.size], dtype=np.int64)])
        runs = np.stack(
            [survivors[starts], base_idx[starts], ends - starts], axis=1
        ).astype(np.int64)
    else:
        runs = np.empty((0, 3), dtype=np.int64)

    new_positions = np.flatnonzero(tracker < 0)
    vocab: dict[str, int] = {}
    codes = np.empty(len(new_positions), dtype=np.int64)
    slots = np.empty(len(new_positions), dtype=np.int64)
    attributes: dict[str, dict] = {}
    text_owner: list[int] = []
    text_slot: list[int] = []
    text_chunks: list[bytes] = []
    for local, current in enumerate(new_positions.tolist()):
        element = tree.elements[current]
        codes[local] = vocab.setdefault(element.tag, len(vocab))
        if element.attributes:
            attributes[str(local)] = dict(element.attributes)
        parent_element = tree.elements[int(tree.parent_index[current])]
        slots[local] = parent_element.children.index(element)
        for slot, child in enumerate(element.children):
            if isinstance(child, Text):
                text_owner.append(local)
                text_slot.append(slot)
                text_chunks.append(child.value.encode("utf-8"))
    offsets = np.zeros(len(text_chunks) + 1, dtype=np.int64)
    if text_chunks:
        offsets[1:] = np.cumsum([len(chunk) for chunk in text_chunks])
    arrays = {
        "incr.runs": runs,
        "incr.new_start": np.ascontiguousarray(tree.start[new_positions]),
        "incr.new_end": np.ascontiguousarray(tree.end[new_positions]),
        "incr.new_level": np.ascontiguousarray(tree.level[new_positions]),
        "incr.new_parent": np.ascontiguousarray(tree.parent_index[new_positions]),
        "incr.new_slot": slots,
        "incr.new_tags": codes,
        "incr.text_owner": np.asarray(text_owner, dtype=np.int64),
        "incr.text_slot": np.asarray(text_slot, dtype=np.int64),
        "incr.text_offsets": offsets,
        "incr.text_data": np.frombuffer(b"".join(text_chunks), dtype=np.uint8)
        if text_chunks
        else np.empty(0, dtype=np.uint8),
    }
    meta = {
        "base_lsn": int(base_lsn),
        "base_nodes": int(base_nodes),
        "nodes": len(tree),
        "tag_vocab": [tag for tag, _ in sorted(vocab.items(), key=lambda kv: kv[1])],
        "attributes": attributes,
    }
    return arrays, meta


def _write_state_archive(
    path: Path,
    arrays: dict,
    directory: Path,
    faults: Optional[FaultPlan] = None,
    container: str = "npz",
) -> int:
    tmp = path.with_suffix(".tmp")
    fire(faults, CKPT_WRITE)
    with open(tmp, "wb") as handle:
        if container == "pagefile":
            handle.write(encode_page_file(arrays))
        else:
            np.savez_compressed(handle, **arrays)
        handle.flush()
        fire(faults, CKPT_FSYNC)
        os.fsync(handle.fileno())
    fire(faults, CKPT_RENAME)
    os.replace(tmp, path)
    _fsync_directory(directory, faults)
    return path.stat().st_size


def write_checkpoint(
    service, directory: Union[str, Path], lsn: int, force_full: bool = False
) -> None:
    """Persist the service's recoverable state as checkpoint ``lsn``.

    Two files, each written to a temporary name, fsync'd, and atomically
    renamed (summaries first, then the directory entry itself synced):
    a checkpoint only becomes *visible* (both files present) once both
    writes are durable, so neither a crash mid-checkpoint nor a power
    failure right after it can leave a half-readable "newest"
    checkpoint.

    Checkpoints are **incremental** whenever they can be: the summary
    archive re-writes only histogram pages whose epoch changed since
    the previous checkpoint (everything else is a manifest reference to
    the checkpoint file that last archived the page), and the state
    archive stores a splice delta against the last *full* checkpoint
    instead of the whole forest.  A checkpoint falls back to full when
    no valid delta base exists (first checkpoint, recovery, a relabel /
    rebuild invalidated the tracker), when ``force_full`` is set, or
    when the delta has grown past a quarter of the tree (at which point
    re-basing is cheaper for every later checkpoint).  The state meta's
    ``refs`` list names every older checkpoint this one depends on, so
    retention and compaction never prune a referenced base.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    container = getattr(service, "_ckpt_container", None) or CHECKPOINT_CONTAINER
    state_path, summary_path = checkpoint_paths(directory, lsn, container=container)
    tree = service.tree

    tracker = service._ckpt_tracker
    prior = service._ckpt_prior
    incremental = (
        not force_full
        and tracker is not None
        and len(tracker) == len(tree)
        and prior is not None
        and lsn > prior["base_lsn"]
        # Bound the reference chain: a delta base stays live (and keeps
        # its log suffix alive) for as long as deltas point at it, so
        # re-base periodically to let retention + compaction advance.
        and prior.get("deltas_since_base", 0) < MAX_DELTA_CHAIN
    )
    if incremental:
        inserted = int(np.count_nonzero(tracker < 0))
        deleted = int(prior["base_nodes"]) - (len(tracker) - inserted)
        if (inserted + deleted) * 4 >= max(1, len(tree)):
            incremental = False

    from repro.histograms.store import save_summary_pages, summary_page_refs

    faults = getattr(service, "_fault_plan", None)
    summary_tmp = summary_path.with_suffix(".tmp")
    fire(faults, CKPT_WRITE)
    index = save_summary_pages(
        service.estimator,
        summary_tmp,
        lsn,
        prior=prior["summaries"] if incremental and prior else None,
        container=container,
    )
    _fsync_path(summary_tmp, faults)
    fire(faults, CKPT_RENAME)
    os.replace(summary_tmp, summary_path)

    numerator_tags, numerator_arrays = _numerator_arrays(service)
    meta = _base_meta(service, lsn, numerator_tags)
    summary_refs = {
        int(row[key])
        for row in index.values()
        for key in ("at", "cvg_at")
        if key in row and int(row[key]) != lsn
    }
    if incremental:
        delta_arrays, delta_meta = _encode_state_delta(
            service, prior["base_lsn"], prior["base_nodes"]
        )
        meta["incremental"] = delta_meta
        meta["refs"] = sorted(summary_refs | {int(prior["base_lsn"])})
        arrays = {**delta_arrays, **numerator_arrays}
    else:
        meta["refs"] = sorted(summary_refs)
        arrays = {
            "start": np.ascontiguousarray(tree.start, dtype=np.int64),
            "end": np.ascontiguousarray(tree.end, dtype=np.int64),
            "level": np.ascontiguousarray(tree.level, dtype=np.int64),
            "parent_index": np.ascontiguousarray(tree.parent_index, dtype=np.int64),
            **numerator_arrays,
        }
        fast_arrays, fast_meta = _encode_forest(service.documents, tree)
        meta["fast"] = fast_meta
        arrays.update(fast_arrays)
        for doc_index, document in enumerate(service.documents):
            arrays[f"doc{doc_index}"] = np.frombuffer(
                write_document(document).encode("utf-8"), dtype=np.uint8
            )
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    _write_state_archive(state_path, arrays, directory, faults, container=container)

    # A re-checkpoint of the same LSN under a different container would
    # otherwise leave a stale twin pair that path resolution could
    # prefer over the bytes just written; drop the other spelling now
    # that this one is durable (mapped files are left for retention).
    mapped = mapped_paths()
    for other, pair in _checkpoint_pairs(directory, lsn).items():
        if other == container:
            continue
        victims = [path for path in pair if path.exists()]
        if victims and not any(path.resolve() in mapped for path in victims):
            for path in victims:
                path.unlink()
            _fsync_directory(directory)

    # Both files are durable: adopt the new checkpoint as the delta
    # baseline for the next one.
    if incremental:
        service._ckpt_prior = {
            **prior,
            "lsn": lsn,
            "summaries": index,
            "deltas_since_base": prior.get("deltas_since_base", 0) + 1,
        }
    else:
        service._ckpt_prior = {
            "lsn": lsn,
            "base_lsn": lsn,
            "base_nodes": len(tree),
            "summaries": index,
            "deltas_since_base": 0,
        }
        service._reset_tracker()


@dataclass
class _LoadedCheckpoint:
    lsn: int
    meta: dict
    documents: list[Document]
    start: np.ndarray
    end: np.ndarray
    level: np.ndarray
    parent_index: np.ndarray
    summaries: "object"  # LoadedSummaries
    numerators: dict  # tag -> {(i, j, m, n): int}
    elements: Optional[list] = None  # pre-order, aligned with the arrays
    #: Open :class:`PageFile` the label arrays (and deferred forest)
    #: view, for a lazy load; holding it here keeps the mapping alive
    #: and visible to retention.
    backing: Optional[PageFile] = None
    #: Pre-computed tree fingerprint (lazy loads hash the stored tag
    #: codes instead of touching ``Element`` objects).
    fingerprint: Optional[str] = None
    #: Stored pre-order tag codes + vocabulary (lazy loads only): lets
    #: the service seed its per-tag index without the forest.
    tag_codes: Optional[np.ndarray] = None
    tag_vocab: Optional[list] = None
    lazy: bool = False


def _decode_numerators(archive, meta) -> dict:
    from repro.histograms.coverage import CoverageNumerators

    g = int(meta["grid_size"])
    numerators = {}
    for slot, tag in enumerate(meta.get("coverage_numerators", [])):
        keys = np.asarray(archive[f"cvgnum{slot}.keys"], dtype=np.int64)
        counts = np.asarray(archive[f"cvgnum{slot}.counts"], dtype=np.int64)
        codes = ((keys[:, 0] * g + keys[:, 1]) * g + keys[:, 2]) * g + keys[:, 3]
        numerators[tag] = CoverageNumerators(g, codes, counts)
    return numerators


def _label_array(values) -> np.ndarray:
    """A stored label column as int64, copying only when the stored
    dtype differs -- a mapped page-file segment stays a zero-copy view."""
    arr = np.asarray(values)
    if arr.dtype == np.int64:
        return arr
    return arr.astype(np.int64)


def _derived_elements(documents) -> list[Element]:
    elements: list[Element] = []
    for document in documents:
        for child in document.children:
            if isinstance(child, Element):
                elements.extend(child.iter())
    return elements


def _apply_state_delta(base: "_LoadedCheckpoint", archive, meta, state_path):
    """Reconstruct a delta checkpoint's exact state over its base.

    Mutates the freshly decoded base forest (nothing else references
    it): detaches every net-deleted subtree root, builds the inserted
    elements, and splices each inserted node into its parent's children
    at the archived slot -- reproducing the live children layout (text
    interleaving included) bit-exactly.  Any inconsistency between the
    delta and its base raises
    :class:`~repro.histograms.store.SummaryFormatError`, which recovery
    treats like any other corrupt checkpoint.
    """
    incr = meta["incremental"]
    n_cur = int(incr["nodes"])
    base_n = len(base.start)
    runs = archive["incr.runs"].astype(np.int64).reshape(-1, 3)
    new_start = archive["incr.new_start"].astype(np.int64)
    new_end = archive["incr.new_end"].astype(np.int64)
    new_level = archive["incr.new_level"].astype(np.int64)
    new_parent = archive["incr.new_parent"].astype(np.int64)
    new_slot = archive["incr.new_slot"].astype(np.int64)
    new_tags = archive["incr.new_tags"].astype(np.int64)

    start = np.empty(n_cur, dtype=np.int64)
    end = np.empty(n_cur, dtype=np.int64)
    level = np.empty(n_cur, dtype=np.int64)
    parent_index = np.empty(n_cur, dtype=np.int64)
    survivor_mask = np.zeros(n_cur, dtype=bool)
    cur_of_base = np.full(base_n, -1, dtype=np.int64)
    for c0, b0, length in runs.tolist():
        if length <= 0 or c0 < 0 or b0 < 0 or c0 + length > n_cur or b0 + length > base_n:
            raise SummaryFormatError(f"{state_path} delta run {(c0, b0, length)} out of bounds")
        if survivor_mask[c0 : c0 + length].any():
            raise SummaryFormatError(f"{state_path} delta runs overlap")
        start[c0 : c0 + length] = base.start[b0 : b0 + length]
        end[c0 : c0 + length] = base.end[b0 : b0 + length]
        level[c0 : c0 + length] = base.level[b0 : b0 + length]
        survivor_mask[c0 : c0 + length] = True
        cur_of_base[b0 : b0 + length] = np.arange(c0, c0 + length, dtype=np.int64)
    new_positions = np.flatnonzero(~survivor_mask)
    if len(new_positions) != len(new_start):
        raise SummaryFormatError(
            f"{state_path} delta covers {len(new_positions)} inserted slots "
            f"but archives {len(new_start)}"
        )
    start[new_positions] = new_start
    end[new_positions] = new_end
    level[new_positions] = new_level

    # Survivor parents: a surviving node's parent always survives, so
    # the base parent maps through; a miss means the delta is corrupt.
    for c0, b0, length in runs.tolist():
        base_parents = base.parent_index[b0 : b0 + length]
        mapped = np.where(base_parents < 0, -1, cur_of_base[np.clip(base_parents, 0, None)])
        if np.any((base_parents >= 0) & (mapped < 0)):
            raise SummaryFormatError(
                f"{state_path} delta deletes the parent of a surviving node"
            )
        parent_index[c0 : c0 + length] = mapped
    if np.any((new_parent < 0) | (new_parent >= n_cur)):
        raise SummaryFormatError(f"{state_path} delta has an inserted node without a parent")
    parent_index[new_positions] = new_parent

    # Elements: survivors from the base forest, inserted ones fresh.
    base_elements = (
        base.elements if base.elements is not None else _derived_elements(base.documents)
    )
    if len(base_elements) != base_n:
        raise SummaryFormatError(f"{state_path} base checkpoint elements misaligned")
    elements: list = [None] * n_cur
    for c0, b0, length in runs.tolist():
        elements[c0 : c0 + length] = base_elements[b0 : b0 + length]

    # Detach net-deleted subtree roots (a deleted node whose base
    # parent survives or was a document root).
    for d in np.flatnonzero(cur_of_base < 0).tolist():
        p = int(base.parent_index[d])
        if p == -1 or cur_of_base[p] >= 0:
            victim = base_elements[d]
            victim.parent.children.remove(victim)
            victim.parent = None

    vocab = incr["tag_vocab"]
    inserted = [Element(vocab[int(code)]) for code in new_tags.tolist()]
    for raw_local, attrs in incr.get("attributes", {}).items():
        inserted[int(raw_local)].attributes = dict(attrs)
    for position, element in zip(new_positions.tolist(), inserted):
        elements[position] = element

    # Children placement: every inserted element (and every text node
    # owned by one) carries its exact slot in its parent's children
    # list; inserting in ascending slot order reproduces the layout.
    placements: dict[int, list[tuple[int, object]]] = {}
    for local, element in enumerate(inserted):
        placements.setdefault(int(new_parent[local]), []).append(
            (int(new_slot[local]), element)
        )
    text_owner = archive["incr.text_owner"].tolist()
    text_slot = archive["incr.text_slot"].tolist()
    offsets = archive["incr.text_offsets"].tolist()
    blob = bytes(archive["incr.text_data"])
    for k, (owner_local, slot) in enumerate(zip(text_owner, text_slot)):
        owner_position = int(new_positions[int(owner_local)])
        node = Text(blob[offsets[k] : offsets[k + 1]].decode("utf-8"))
        placements.setdefault(owner_position, []).append((int(slot), node))
    for parent_position, entries in placements.items():
        parent_element = elements[parent_position]
        for slot, node in sorted(entries, key=lambda item: item[0]):
            if slot > len(parent_element.children):
                raise SummaryFormatError(
                    f"{state_path} delta child slot {slot} beyond the "
                    f"parent's children"
                )
            node.parent = parent_element
            parent_element.children.insert(slot, node)

    return base.documents, elements, start, end, level, parent_index


def _load_state(
    directory: Union[str, Path],
    lsn: int,
    allow_delta: bool = True,
    lazy: bool = False,
) -> _LoadedCheckpoint:
    """Load (and for delta checkpoints, reconstruct) one checkpoint's
    state archive; ``summaries`` is left unset.

    ``lazy=True`` is honoured for *full* checkpoints whose state lives
    in a page file with the fast forest encoding: the label arrays come
    back as zero-copy mmap views, the ``Element`` decode is deferred
    behind :mod:`repro.storage.lazy` proxies, and the open mapping
    rides on ``backing``.  Anything else (legacy ``.npz``, delta
    checkpoints, XML-only archives) silently degrades to an eager load.
    """
    state_path = checkpoint_paths(directory, lsn)[0]
    try:
        archive = open_array_container(state_path)
    except Exception as exc:
        raise SummaryFormatError(
            f"{state_path} is not a checkpoint state archive: {exc}"
        ) from exc
    lazy = bool(lazy) and isinstance(archive, PageFile)
    fingerprint = None
    tag_codes = tag_vocab = None
    try:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        elements = None
        if "incremental" in meta:
            if not allow_delta:
                raise SummaryFormatError(
                    f"{state_path} chains a delta onto another delta"
                )
            lazy = False
            base = _load_state(
                directory, int(meta["incremental"]["base_lsn"]), allow_delta=False
            )
            (
                documents,
                elements,
                start,
                end,
                level,
                parent_index,
            ) = _apply_state_delta(base, archive, meta, state_path)
        else:
            start = _label_array(archive["start"])
            end = _label_array(archive["end"])
            level = _label_array(archive["level"])
            parent_index = _label_array(archive["parent_index"])
            if "fast" not in meta:
                lazy = False
                documents = [
                    parse_document(bytes(archive[f"doc{k}"]).decode("utf-8"))
                    for k in range(int(meta["documents"]))
                ]
            elif lazy:
                from repro.storage.lazy import (
                    LazyDocuments,
                    LazyElements,
                    LazyForestState,
                )

                fast_meta = meta["fast"]
                tag_vocab = list(fast_meta["tag_vocab"])
                tag_codes = np.asarray(archive["fast.tags"], dtype=np.int64)
                if len(tag_codes) != len(start):
                    raise SummaryFormatError(
                        f"{state_path} stores {len(tag_codes)} tag codes "
                        f"for {len(start)} labels"
                    )
                if len(tag_codes) and (
                    int(tag_codes.min()) < 0
                    or int(tag_codes.max()) >= len(tag_vocab)
                ):
                    raise SummaryFormatError(
                        f"{state_path} tag codes fall outside the vocabulary"
                    )
                # Validating the fingerprint needs labels + tags only,
                # so a lazy open never touches the forest segments.
                fingerprint = tree_fingerprint_from_parts(
                    start, end, (tag_vocab[c] for c in tag_codes.tolist())
                )
                state = LazyForestState(
                    lambda: _decode_forest(archive, fast_meta, parent_index),
                    expected_documents=len(fast_meta["doc_roots"]),
                    expected_elements=len(start),
                )
                documents = LazyDocuments(state)
                elements = LazyElements(state)
            else:
                # Numpy-native forest: rebuild the elements without
                # tokenizing the XML members (kept for fidelity).
                documents, elements = _decode_forest(
                    archive, meta["fast"], parent_index
                )
        numerators = _decode_numerators(archive, meta)
    except SummaryFormatError:
        archive.close()
        raise
    except Exception as exc:
        archive.close()
        raise SummaryFormatError(
            f"{state_path} checkpoint state is corrupt: {exc}"
        ) from exc
    if not lazy:
        # A PageFile with exported views survives this close (it
        # releases on the last view drop); an npz handle just closes.
        archive.close()
    if not (len(start) == len(end) == len(level) == len(parent_index)):
        raise SummaryFormatError(f"{state_path} label arrays disagree in length")
    return _LoadedCheckpoint(
        lsn=int(meta["lsn"]),
        meta=meta,
        documents=documents,
        start=start,
        end=end,
        level=level,
        parent_index=parent_index,
        summaries=None,
        numerators=numerators,
        elements=elements,
        backing=archive if lazy else None,
        fingerprint=fingerprint,
        tag_codes=tag_codes,
        tag_vocab=tag_vocab,
        lazy=lazy,
    )


def checkpoint_refs(directory: Union[str, Path], lsn: int) -> set[int]:
    """Older checkpoints that ``lsn`` depends on (delta base + summary
    page references), from its state meta.  Unreadable metas yield the
    empty set -- such a checkpoint cannot recover anyway."""
    state_path = checkpoint_paths(directory, lsn)[0]
    try:
        with open_array_container(state_path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        return {int(ref) for ref in meta.get("refs", [])}
    except Exception:
        return set()


def load_checkpoint(
    directory: Union[str, Path], lsn: int, lazy: bool = False
) -> _LoadedCheckpoint:
    """Load and validate one checkpoint; raises
    :class:`~repro.histograms.store.SummaryFormatError` on any
    malformed, truncated, mismatched, or unresolvable file (including a
    referenced older checkpoint that is itself missing or corrupt).
    Both the checkpoint and its references resolve in whichever
    container they were written -- a pagefile delta may reference a
    legacy ``.npz`` base and vice versa."""
    from repro.histograms.store import load_summary_pages

    directory = Path(directory)
    summary_path = checkpoint_paths(directory, lsn)[1]
    opened: dict[int, object] = {}
    try:

        def resolve(ref_lsn: int):
            if ref_lsn not in opened:
                ref_path = checkpoint_paths(directory, ref_lsn)[1]
                try:
                    opened[ref_lsn] = open_array_container(ref_path)
                except Exception as exc:
                    raise SummaryFormatError(
                        f"{summary_path} references checkpoint {ref_lsn} "
                        f"whose summary archive is unreadable: {exc}"
                    ) from exc
            return opened[ref_lsn]

        summaries = load_summary_pages(summary_path, resolve=resolve)
    finally:
        # A PageFile whose segments were adopted zero-copy survives
        # this close until the last adopted page drops it.
        for archive in opened.values():
            archive.close()
    checkpoint = _load_state(directory, lsn, lazy=lazy)
    checkpoint.summaries = summaries
    return checkpoint


# -- retention + log compaction -----------------------------------------------


@dataclass
class CompactStats:
    """What one :func:`compact` pass did."""

    base_lsn: int
    records_dropped: int
    log_bytes_before: int
    log_bytes_after: int
    checkpoints_pruned: list[int]


def live_checkpoint_lsns(
    directory: Union[str, Path], keep_checkpoints: Optional[int] = None
) -> set[int]:
    """The checkpoints that must survive retention: the newest
    ``keep_checkpoints`` complete ones plus everything they reference
    transitively (delta bases, summary-page archives).  ``None`` keeps
    all of them."""
    directory = Path(directory)
    lsns = list_checkpoints(directory)
    if keep_checkpoints is None:
        kept = set(lsns)
    else:
        kept = set(lsns[: max(1, int(keep_checkpoints))])
    live: set[int] = set()
    queue = sorted(kept, reverse=True)
    while queue:
        lsn = queue.pop()
        if lsn in live:
            continue
        live.add(lsn)
        queue.extend(checkpoint_refs(directory, lsn) - live)
    return live


def prune_checkpoints(
    directory: Union[str, Path], keep_checkpoints: Optional[int]
) -> list[int]:
    """Delete checkpoints outside the retention set, plus stray
    temporary files; the directory entry is fsync'd afterwards so a
    crash mid-prune can strand at worst a *dead* checkpoint (whose load
    fails cleanly and falls back), never a live manifest referencing a
    deleted file -- referenced bases are always in the retention set.

    Retention is **mapping-aware**: a checkpoint any file of which is
    currently mmap'd in this process (a lazy service, a live snapshot
    holding zero-copy pages) is deferred even when it falls outside the
    retention set -- the next prune reclaims it once the last mapping
    drops.  Every container spelling of a pruned LSN is unlinked, so a
    re-checkpoint that switched formats leaves no orphaned twin.

    Returns the pruned LSNs (newest first -- also the deletion order,
    so a referencing delta dies before its base).
    """
    directory = Path(directory)
    live = live_checkpoint_lsns(directory, keep_checkpoints)
    mapped = mapped_paths()
    pruned: list[int] = []
    for lsn in list_checkpoints(directory):  # newest first
        if lsn in live:
            continue
        victims = [
            path
            for pair in _checkpoint_pairs(directory, lsn).values()
            for path in pair
            if path.exists()
        ]
        if any(path.resolve() in mapped for path in victims):
            continue
        for path in victims:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
        pruned.append(lsn)
    for stray in directory.glob("*.tmp"):
        stray.unlink()
    _fsync_directory(directory)
    return pruned


def compact(
    directory: Union[str, Path],
    keep_checkpoints: Optional[int] = None,
    wal: Optional[WriteAheadLog] = None,
) -> CompactStats:
    """Compact a durable directory: truncate the log's dead prefix and
    prune superseded checkpoints.

    Log records at or below the oldest *live* checkpoint (see
    :func:`live_checkpoint_lsns`) can never be replayed again -- every
    recoverable checkpoint starts at or after them -- so the log is
    rewritten without them.  The new log leads with a ``base``
    watermark record carrying that LSN: recovery refuses to use a
    checkpoint older than the watermark (its replay suffix is gone), so
    even a crash that strands a superseded checkpoint on disk can never
    cause a silently divergent recovery.  Retained records are copied
    byte-for-byte (checksums included), the new log is written to a
    temporary file, fsync'd, and atomically renamed -- a crash at any
    point leaves either the old or the new log, both fully recoverable.

    ``wal`` is the directory's open log handle when compacting a live
    service; it is flushed, closed around the rename, and reopened for
    appends.  A directory with no complete checkpoint is left alone.
    """
    directory = Path(directory)
    log_path = directory / LOG_NAME
    records, valid_end = read_records(log_path)
    raw = log_path.read_bytes() if log_path.exists() else b""
    live = live_checkpoint_lsns(directory, keep_checkpoints)
    old_base = max((r.lsn for r in records if r.type == "base"), default=0)
    if not live:
        return CompactStats(old_base, 0, len(raw), len(raw), [])
    base = max(min(live), old_base)

    dropped = sum(1 for r in records if r.type != "base" and r.lsn <= base)
    if dropped == 0:
        # Nothing to truncate (common while a delta chain pins its full
        # base): skip the O(log) rewrite entirely -- leaving the
        # watermark where it is stays safe, because every checkpoint
        # still has its full replay suffix -- and only prune.
        pruned = prune_checkpoints(directory, keep_checkpoints)
        return CompactStats(old_base, 0, len(raw), len(raw), pruned)

    keep_records = [r for r in records if r.type != "base" and r.lsn > base]
    payload = _encode_record_payload(
        {"lsn": base, "type": "base"},
        wal.codec if wal is not None else "binary",
    )
    chunks = [WAL_MAGIC, _HEADER.pack(len(payload), zlib.crc32(payload)), payload]
    chunks.extend(raw[r.offset : r.end_offset] for r in keep_records)
    new_bytes = b"".join(chunks)

    faults = wal.faults if wal is not None else None
    if wal is not None:
        wal.sync()
        wal._fh.close()
    try:
        tmp = directory / (LOG_NAME + ".tmp")
        fire(faults, CKPT_WRITE)
        with open(tmp, "wb") as handle:
            handle.write(new_bytes)
            handle.flush()
            fire(faults, CKPT_FSYNC)
            os.fsync(handle.fileno())
        fire(faults, CKPT_RENAME)
        os.replace(tmp, log_path)
        _fsync_directory(directory, faults)
    finally:
        # Reopen the append handle no matter what: a failed rewrite
        # (say ENOSPC) leaves the old log intact on disk, and the live
        # service must keep appending to it rather than dying on a
        # closed file for every later update.
        if wal is not None:
            wal._fh = open(log_path, "ab")

    pruned = prune_checkpoints(directory, keep_checkpoints)
    return CompactStats(
        base_lsn=base,
        records_dropped=dropped,
        log_bytes_before=len(raw),
        log_bytes_after=len(new_bytes),
        checkpoints_pruned=pruned,
    )


def seed_log(
    path: Union[str, Path], base_lsn: int, codec: str = "binary"
) -> None:
    """Write a fresh log whose only record is a ``base`` watermark.

    Exactly the head :func:`compact` leaves: recovery over it loads the
    checkpoint at ``base_lsn`` (refusing anything older) and replays
    nothing.  Follower bootstrap seeds its directory with this so the
    transferred checkpoint plus an empty replay suffix recover, and the
    apply loop's first shipped record lands at ``base_lsn + 1``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _encode_record_payload({"lsn": int(base_lsn), "type": "base"}, codec)
    frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(WAL_MAGIC + frame)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# -- durable open / recovery -------------------------------------------------


def create_durable(
    documents,
    directory: Union[str, Path],
    *,
    grid_size: int = 10,
    grid: str = "uniform",
    spacing: int = 64,
    rebuild_threshold: float = 0.25,
    n_workers: int = 1,
    checkpoint_every: int = 16,
    keep_checkpoints: Optional[int] = None,
    auto_compact: bool = False,
):
    """Initialise a fresh durable directory around a new service."""
    from repro.service.service import EstimationService

    directory = Path(directory)
    service = EstimationService(
        documents,
        grid_size=grid_size,
        grid=grid,
        spacing=spacing,
        rebuild_threshold=rebuild_threshold,
        n_workers=n_workers,
    )
    write_checkpoint(service, directory, 0)
    wal = WriteAheadLog(directory / LOG_NAME)
    service._attach_wal(
        wal,
        directory,
        checkpoint_every,
        last_lsn=0,
        keep_checkpoints=keep_checkpoints,
        auto_compact=auto_compact,
    )
    service.recovery_info = None
    return service


def open_durable(
    directory: Union[str, Path],
    documents=None,
    *,
    grid_size: int = 10,
    grid: str = "uniform",
    spacing: int = 64,
    rebuild_threshold: float = 0.25,
    n_workers: int = 1,
    checkpoint_every: int = 16,
    keep_checkpoints: Optional[int] = None,
    auto_compact: bool = False,
    lazy: bool = False,
):
    """Open a durable estimation service rooted at ``directory``.

    A directory with existing state (a log or any checkpoint) is
    *recovered*: the newest valid checkpoint is loaded, the log suffix
    replayed, and the torn tail (if any) truncated -- ``documents`` and
    the grid/spacing keyword arguments are ignored, because the durable
    state fixes them.  A fresh directory requires ``documents`` and is
    initialised with a checkpoint at LSN 0.  ``keep_checkpoints``
    bounds checkpoint retention (older ones are pruned after each new
    checkpoint, minus anything still referenced); ``auto_compact``
    additionally compacts the log after every checkpoint.

    ``lazy=True`` warm-starts from the checkpoint's mmap'd page files
    instead of materialising the forest up front: label arrays and
    histogram pages are zero-copy views of the mapping, estimation over
    registered tag predicates works immediately, and the ``Element``
    objects are decoded only when something actually touches them (an
    update batch, a structural scan).  WAL-suffix replay forces the
    forest, so a lazy open stays lazy exactly when the log holds no
    batches past the checkpoint.  Legacy ``.npz`` checkpoints ignore
    the flag and load eagerly.
    """
    directory = Path(directory)
    has_state = (directory / LOG_NAME).exists() or bool(list_checkpoints(directory))
    if not has_state:
        if documents is None:
            raise WalError(
                f"{directory} holds no durable state and no documents were "
                f"given to initialise it"
            )
        return create_durable(
            documents,
            directory,
            grid_size=grid_size,
            grid=grid,
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
            n_workers=n_workers,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            auto_compact=auto_compact,
        )
    return _recover(
        directory,
        n_workers=n_workers,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=keep_checkpoints,
        auto_compact=auto_compact,
        lazy=lazy,
    )


def apply_logged_batch(service, payload: dict, committed: bool = False) -> bool:
    """Apply one logged batch record exactly as recovery replay does.

    Shared by crash recovery and the follower apply loop -- a follower
    that has applied records up to LSN N is bit-identical to
    ``open_durable`` recovery of a log truncated at N *because they run
    this same function*.  Returns ``True`` when the batch applied
    (including the repaired-and-committed :class:`BatchError` shape) and
    ``False`` when it rolled back, leaving the pre-batch state.  A batch
    known to have committed live that cannot be reproduced raises
    :class:`WalError`: continuing would silently diverge every later
    record's pre-batch references.
    """
    service._replaying = True
    try:
        ops = decode_ops(service, payload["ops"])
        if payload.get("single") and len(ops) == 1:
            op = ops[0]
            if isinstance(op, InsertOp):
                service.insert_subtree(op.parent, op.subtree, op.position)
            else:
                service.delete_subtree(op.node)
        else:
            service.apply_batch(ops)
        return True
    except BatchError as exc:
        # applied=True: the live run hit the same flush failure,
        # repaired with a rebuild, and committed -- state matches.
        # applied=False: rolled back, bit-identical to pre-batch.
        return bool(exc.applied)
    except Exception as exc:
        if committed:
            raise WalError(
                f"replay of committed batch lsn {payload.get('lsn')} "
                f"failed: {exc}"
            ) from exc
        # Unmarked record: the live run crashed mid-apply (or failed
        # the same way before writing its abort marker); the
        # rolled-back applier left the pre-batch state.
        return False
    finally:
        service._replaying = False


def _recover(
    directory: Path,
    n_workers: int,
    checkpoint_every: int,
    keep_checkpoints: Optional[int] = None,
    auto_compact: bool = False,
    lazy: bool = False,
):
    records, valid_end = read_records(directory / LOG_NAME)
    raw_size = (
        (directory / LOG_NAME).stat().st_size
        if (directory / LOG_NAME).exists()
        else 0
    )

    checkpoint = service = None
    last_error: Optional[Exception] = None
    # Compaction watermark: records at or below it were dropped, so a
    # checkpoint older than it is missing its replay suffix and must
    # never be used -- even if a crash mid-prune left it on disk.
    base_watermark = max((r.lsn for r in records if r.type == "base"), default=0)
    for lsn in list_checkpoints(directory):
        if lsn < base_watermark:
            continue
        try:
            # Both the file loads and the cross-file validation
            # (fingerprint, element-count alignment) must pass for a
            # checkpoint to be usable; a mismatched pair falls back to
            # an older checkpoint exactly like a corrupt file.
            checkpoint = load_checkpoint(directory, lsn, lazy=lazy)
            service = _service_from_checkpoint(checkpoint, n_workers)
            break
        except SummaryFormatError as exc:
            last_error = exc
    if service is None:
        raise WalError(
            f"{directory} has no loadable checkpoint; cannot recover"
            + (f" (last error: {last_error})" if last_error else "")
        )
    # Re-arm the incremental checkpointer from the stored manifest
    # *before* replay, so the splice tracker composes the replayed
    # batches over the recovered baseline.
    _seed_checkpoint_prior(service, directory, checkpoint)

    aborted = {r.lsn for r in records if r.type == "abort"}
    committed = {r.lsn for r in records if r.type == "commit"}
    replayed = skipped = 0
    for record in records:
        if record.type != "batch" or record.lsn <= checkpoint.lsn:
            continue
        if record.lsn in aborted:
            skipped += 1
            continue
        if apply_logged_batch(
            service, record.payload, committed=record.lsn in committed
        ):
            replayed += 1
        else:
            skipped += 1

    # Truncate the torn tail; reuse the scan instead of re-reading.
    wal = WriteAheadLog(directory / LOG_NAME, scanned=(records, valid_end))
    last_lsn = max(
        (r.lsn for r in records if r.type == "batch"), default=checkpoint.lsn
    )
    service._attach_wal(
        wal,
        directory,
        checkpoint_every,
        last_lsn=last_lsn,
        keep_checkpoints=keep_checkpoints,
        auto_compact=auto_compact,
    )
    service._last_checkpoint_lsn = checkpoint.lsn
    service.recovery_info = RecoveryInfo(
        checkpoint_lsn=checkpoint.lsn,
        batches_replayed=replayed,
        batches_skipped=skipped,
        truncated_bytes=max(0, raw_size - valid_end),
        next_lsn=wal.next_lsn,
    )
    return service


def _seed_checkpoint_prior(
    service, directory: Path, checkpoint: _LoadedCheckpoint
) -> None:
    """Re-arm the incremental checkpointer straight out of recovery.

    The in-memory prior index (histogram epoch -> archive location)
    used to die with the process, forcing the first post-recovery
    checkpoint to re-archive everything.  The stored manifest carries
    the same facts, and the summary loader adopts stored epoch ids
    (with a global floor so they are never re-issued), so rebuilding
    the index here lets the next checkpoint reference every unchanged
    page -- and cut a state delta against the recovered base -- exactly
    as an uninterrupted run would have.

    Only *full* checkpoints with epoch-addressed manifests qualify;
    anything else leaves the prior unset and the next checkpoint
    re-bases (the old behavior).
    """
    if "incremental" in checkpoint.meta:
        return
    from repro.histograms.store import read_summary_manifest

    summary_path = checkpoint_paths(directory, checkpoint.lsn)[1]
    try:
        manifest = read_summary_manifest(summary_path)
    except Exception:
        return
    lsn = checkpoint.lsn
    index: dict[str, dict] = {}
    for entry in manifest.get("predicates", []):
        if "epoch" not in entry or "name" not in entry:
            return  # pre-epoch manifest: nothing referenceable
        row = {
            "epoch": int(entry["epoch"]),
            "at": int(entry["ref"]) if entry.get("ref") is not None else lsn,
        }
        if entry.get("has_coverage"):
            if "cvg_epoch" not in entry:
                return
            row["cvg_epoch"] = int(entry["cvg_epoch"])
            row["cvg_at"] = (
                int(entry["cvg_ref"]) if entry.get("cvg_ref") is not None else lsn
            )
        index[entry["name"]] = row
    service._ckpt_prior = {
        "lsn": lsn,
        "base_lsn": lsn,
        "base_nodes": len(checkpoint.start),
        "summaries": index,
        "deltas_since_base": 0,
    }
    service._reset_tracker()


def _service_from_checkpoint(checkpoint: _LoadedCheckpoint, n_workers: int):
    """Materialise a service from checkpointed documents + labels +
    summaries, without rebuilding any persisted statistic.

    For a lazy checkpoint the tree is assembled around the proxy lists
    (bypassing ``LabeledTree.__init__``'s defensive ``list()`` copy,
    which would force the forest) and the catalog's per-tag index is
    seeded from the stored tag-code segment -- so registration,
    estimation, and the fingerprint check below all complete without a
    single ``Element`` existing.
    """
    from repro.estimation.estimator import AnswerSizeEstimator
    from repro.labeling.interval import LabeledTree
    from repro.predicates.base import TagPredicate
    from repro.predicates.catalog import PredicateCatalog
    from repro.service.service import EstimationService, ServiceStats
    from repro.utils.arrays import group_by_code

    meta = checkpoint.meta
    if checkpoint.elements is not None:
        elements = checkpoint.elements
    else:
        elements = []
        for document in checkpoint.documents:
            for child in document.children:
                if isinstance(child, Element):
                    elements.extend(child.iter())
    # A lazy proxy answers len() from the checkpoint metadata, so this
    # alignment check stays free either way.
    if len(elements) != len(checkpoint.start):
        raise SummaryFormatError(
            f"checkpoint documents hold {len(elements)} elements but the "
            f"label arrays cover {len(checkpoint.start)}"
        )

    service = EstimationService.__new__(EstimationService)
    service.documents = checkpoint.documents
    service.grid_size = int(meta["grid_size"])
    service.grid_kind = meta["grid_kind"]
    service.spacing = int(meta["spacing"])
    service.rebuild_threshold = float(meta["rebuild_threshold"])
    service.n_workers = n_workers
    service.stats = ServiceStats()
    service._pool = None
    service._init_wal_state()
    if checkpoint.lazy:
        tree = LabeledTree.__new__(LabeledTree)
        tree.elements = elements
        tree.start = checkpoint.start
        tree.end = checkpoint.end
        tree.level = checkpoint.level
        tree.parent_index = checkpoint.parent_index
        tree.max_label = int(meta["max_label"])
        tree._index_of = None
        # Advertise the mapping to the sharded statistics builder:
        # workers re-open the page file read-only instead of receiving
        # pickled array copies.  The identity fields double as a
        # staleness guard (any relabel replaces the arrays).
        tree.mapped_labels = {
            "path": str(checkpoint.backing.path),
            "start": checkpoint.start,
            "end": checkpoint.end,
            "codes": checkpoint.tag_codes,
            "vocab": checkpoint.tag_vocab,
        }
        service.tree = tree
    else:
        service.tree = LabeledTree(
            elements,
            checkpoint.start,
            checkpoint.end,
            checkpoint.level,
            checkpoint.parent_index,
            int(meta["max_label"]),
        )
    service._ckpt_backing = checkpoint.backing
    loaded = checkpoint.summaries
    fingerprint = (
        checkpoint.fingerprint
        if checkpoint.fingerprint is not None
        else tree_fingerprint(service.tree)
    )
    if loaded.fingerprint != fingerprint:
        raise SummaryFormatError(
            "checkpoint summaries do not match the checkpointed documents "
            "(fingerprint mismatch)"
        )
    service.catalog = PredicateCatalog(service.tree)
    if checkpoint.lazy:
        vocab = checkpoint.tag_vocab
        grouped = group_by_code(checkpoint.tag_codes)
        for group in grouped.values():
            group.setflags(write=False)
        service.catalog._tag_indices = {
            vocab[code]: group for code, group in grouped.items()
        }
    service.estimator = AnswerSizeEstimator(
        service.tree, grid_size=service.grid_size, catalog=service.catalog
    )
    service.estimator.grid = loaded.grid
    service._numerators = {}
    service._dirty_nodes = int(meta.get("dirty_nodes", 0))
    service._optimizer = None
    service._executor = None
    for row in loaded.summaries:
        if row.kind != "tag" or row.tag is None:
            continue
        predicate = TagPredicate(row.tag)
        # Register before installing, as warm_start does: an installed
        # histogram must be catalog-tracked or later updates drift.
        service.catalog.register(predicate)
        service.estimator._position_cache[predicate] = row.position
        if row.coverage is not None:
            service.estimator._coverage_cache[predicate] = row.coverage
    for tag, numerators in checkpoint.numerators.items():
        predicate = TagPredicate(tag)
        service.catalog.register(predicate)
        service._numerators[predicate] = numerators
    return service
