"""The online estimation service: statistics kept correct under updates.

:class:`EstimationService` owns a live XML database -- the document
trees, their interval labels, the predicate catalog, and every histogram
an :class:`~repro.estimation.estimator.AnswerSizeEstimator` has built --
and keeps all of it consistent while the documents take subtree inserts
and deletes.  The offline pipeline treats these as frozen inputs;
serving traffic means none of them are.

Maintenance strategy (per update):

* **labels** -- the forest is labeled with a ``spacing`` factor, so an
  inserted subtree takes labels from the gap at its insertion point
  (:mod:`repro.labeling.dynamic`); nothing else moves.  When a gap is
  exhausted, labels must be reassigned and the service falls back to a
  full rebuild.
* **catalog** -- registered predicates get their node-index arrays
  spliced and their no-overlap property re-checked only when their
  membership actually changed.
* **position histograms** (and the TRUE histogram) -- exact cell count
  deltas for the touched nodes; integer arithmetic in float64, so the
  maintained histogram is bit-identical to one rebuilt from scratch
  over the post-update tree.
* **coverage histograms** -- maintained as *integer pair counts*
  (numerators); every update adds or removes the ``(node, ancestor
  cell)`` pairs of the touched subtree -- for a no-overlap predicate
  each node has at most one covering ancestor, so the delta is a single
  stack walk -- and fractions are re-derived through the same division
  the offline builder uses.
* **pH-join coefficients / level histograms** -- dropped for exactly the
  predicates whose operand histograms changed; everything else keeps
  its cached kernel (the paper's Section 3.3 space-time tradeoff
  survives updates).
* **rebuild threshold** -- when the cumulative touched-node fraction
  since the last (re)build exceeds ``rebuild_threshold``, the service
  relabels and rebuilds everything eagerly, re-priming previously hot
  summaries.  Rebuilds re-bucket the label space, so estimates may move;
  incremental updates never re-bucket.

The invariant the differential test suite pins: **after any sequence of
updates, every maintained structure is bit-identical to a from-scratch
build over the current tree** (:meth:`EstimationService.differential_check`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.engine.bindings import BindingTable
from repro.engine.executor import ExecutionStats, PlanExecutor
from repro.estimation.estimator import AnswerSizeEstimator, Query
from repro.estimation.result import EstimationResult
from repro.histograms.coverage import (
    CellPair,
    CoverageHistogram,
    CoverageNumerators,
    build_coverage_numerators,
    coverage_from_numerators,
)
from repro.histograms.position import PositionHistogram
from repro.histograms.store import (
    SummaryFormatError,
    load_binary_summaries,
    save_binary_summaries,
    tree_fingerprint,
)
from repro.histograms.epoch import EpochRegistry, next_epoch
from repro.histograms.parallel import build_statistics_parallel, create_pool
from repro.labeling.dynamic import (
    GapExhausted,
    apply_delete,
    apply_insert,
    plan_insert,
)
from repro.labeling.interval import LabeledTree, label_forest, relabel_preorder
from repro.optimizer.optimizer import Optimizer, PlanChoice
from repro.predicates.base import Predicate, TagPredicate
from repro.service.protocol import ReadOnlyError
from repro.predicates.catalog import PredicateCatalog
from repro.query.pattern import PatternTree
from repro.xmltree.tree import Document, Element


@dataclass
class ServiceStats:
    """Lifetime counters of one service instance."""

    inserts: int = 0
    deletes: int = 0
    nodes_inserted: int = 0
    nodes_deleted: int = 0
    rebuilds: int = 0
    rebalances: int = 0
    coefficient_invalidations: int = 0
    batches: int = 0


@dataclass
class UpdateResult:
    """What one :meth:`~EstimationService.insert_subtree` /
    :meth:`~EstimationService.delete_subtree` call did."""

    kind: str
    nodes: int
    rebuilt: bool
    predicates_changed: int
    coefficients_invalidated: int
    dirty_fraction: float


@dataclass
class ExecutionOutcome:
    """An executed query: the chosen plan and its bindings."""

    choice: PlanChoice
    bindings: BindingTable
    stats: ExecutionStats


class EstimationService:
    """Long-lived answer-size estimation over a mutable XML database.

    Parameters
    ----------
    documents:
        One document or a forest; the service takes ownership (updates
        mutate these trees in place).
    grid_size, grid:
        Histogram grid side and kind, as for
        :class:`~repro.estimation.estimator.AnswerSizeEstimator`.
    spacing:
        Label-gap factor for in-place inserts; ``spacing - 1`` free
        integer positions separate consecutive labels after a (re)build.
    rebuild_threshold:
        Fraction of the database that may be touched by updates before
        the next update triggers a full relabel-and-rebuild.
    n_workers:
        Shard count for statistics (re)builds.  ``1`` (default) keeps
        the lazy serial paths; ``> 1`` builds the full per-tag
        statistics set through the sharded parallel builder
        (:func:`repro.histograms.parallel.build_statistics_parallel`)
        on cold start and on every rebuild, keeping a worker pool warm
        across rebuilds.
    """

    def __init__(
        self,
        documents: Union[Document, Sequence[Document]],
        grid_size: int = 10,
        grid: str = "uniform",
        spacing: int = 64,
        rebuild_threshold: float = 0.25,
        n_workers: int = 1,
    ) -> None:
        if spacing < 2:
            raise ValueError(f"service spacing must be >= 2, got {spacing}")
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild threshold must be in (0, 1], got {rebuild_threshold}"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.documents = (
            [documents] if isinstance(documents, Document) else list(documents)
        )
        self.grid_size = grid_size
        self.grid_kind = grid
        self.spacing = spacing
        self.rebuild_threshold = rebuild_threshold
        self.n_workers = n_workers
        self.stats = ServiceStats()
        self.tree: Optional[LabeledTree] = None
        self._pool = None
        self._init_wal_state()
        self._build_state()

    def _init_wal_state(self) -> None:
        """Durability + epoch bookkeeping; a plain service keeps the
        durability half inert.  (Shared init hook of the constructor
        and the checkpoint-recovery path.)"""
        # Serialises state transitions (updates, batches, rebuilds,
        # checkpoints, statistics saves) against snapshot construction,
        # so a concurrent serve tier can pin read views from any thread
        # while one writer mutates.  Reentrant: updates fall back to
        # rebuild() internally.  Reads through an already-pinned
        # snapshot never take it.
        self._state_lock = threading.RLock()
        self._wal = None
        self._wal_dir: Optional[Path] = None
        self._replaying = False
        self._checkpoint_every = 16
        self._last_lsn = 0
        self._last_checkpoint_lsn = 0
        self._checkpoint_requested = False
        self._keep_checkpoints: Optional[int] = None
        self._auto_compact = False
        self._ckpt_tracker: Optional[np.ndarray] = None
        self._ckpt_prior: Optional[dict] = None
        # Checkpoint container override ("pagefile" / "npz"; None = the
        # module default) and, after a lazy recovery, the open page-file
        # mapping the tree's label arrays view -- held here so retention
        # sees the file as mapped for the service's lifetime.
        self._ckpt_container: Optional[str] = None
        self._ckpt_backing = None
        self.recovery_info = None
        # Storage-fault degradation: when a WAL append/fsync or
        # checkpoint write fails with an OSError and the policy flag is
        # set (default), the service turns *sticky read-only* -- reads,
        # snapshots, and stats keep serving from the last durable
        # epoch; mutations raise ReadOnlyError until an operator
        # resume_writes() re-probes the device successfully.
        self.read_only_on_wal_error = True
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._fault_plan = None  # FaultPlan consulted by checkpoint writes
        # Replication: a follower records its primary's address here and
        # refuses externally-submitted mutations (the apply loop and
        # checkpoints go through internal entry points).  replica_status
        # is the apply loop's published lag snapshot; _commit_listeners
        # are called (under the state lock) each time the committed LSN
        # advances -- the primary's streaming hub uses this to wake
        # subscribers without polling.
        self.follower_of: Optional[str] = None
        self.replica_status: Optional[dict] = None
        self._commit_listeners: list = []
        # Epoch state: the published-epoch id readers pin, and the
        # refcount registry that frees superseded pages when the last
        # pinning snapshot drops.
        self.epoch = next_epoch()
        self.epoch_registry = EpochRegistry()

    def _publish_epoch(self) -> None:
        """Publish a new epoch: later snapshots pin the new id.

        Called once per completed update, batch, or rebuild.  Sealing
        of histogram overlays is lazy (it happens when a snapshot pins
        the state), so publishing is O(1)."""
        self.epoch = next_epoch()

    # -- state construction ------------------------------------------------

    def _build_state(
        self, from_documents: bool = True, catalog_in_sync: bool = True
    ) -> None:
        """(Re)label the forest and start a fresh catalog + estimator.

        ``from_documents=False`` relabels the existing label table
        arithmetically (:func:`~repro.labeling.interval.relabel_preorder`,
        bit-identical to the document walk) -- valid whenever the table
        is in sync with the documents, i.e. on every threshold-triggered
        rebuild.  ``catalog_in_sync=False`` says the catalog's per-tag
        index may lag the label table (a batch that fell back to a
        rebuild before its catalog flush), so the sharded builder must
        re-scan the elements instead of reusing it.
        """
        previous_tag_indices = None
        if self.tree is None or from_documents:
            labeled = label_forest(self.documents, spacing=self.spacing)
            if self.tree is None:
                self.tree = labeled
            else:
                # Keep the LabeledTree identity: catalogs and executors
                # from earlier epochs would otherwise hold a stale table.
                self.tree.replace_contents(
                    labeled.elements,
                    labeled.start,
                    labeled.end,
                    labeled.level,
                    labeled.parent_index,
                    labeled.max_label,
                )
        else:
            relabel_preorder(self.tree, self.spacing)
            # The maintained per-tag index stays valid across a pure
            # relabel; the sharded builder derives tag codes from it
            # instead of re-scanning every element.
            if catalog_in_sync:
                previous_tag_indices = self.catalog._tag_indices
        self.catalog = PredicateCatalog(self.tree)
        self.estimator = AnswerSizeEstimator(
            self.tree,
            grid_size=self.grid_size,
            catalog=self.catalog,
            grid=self.grid_kind,
        )
        self._numerators: dict[Predicate, CoverageNumerators] = {}
        self._dirty_nodes = 0
        self._optimizer: Optional[Optimizer] = None
        self._executor: Optional[PlanExecutor] = None
        if self.n_workers > 1:
            self._install_built_statistics(previous_tag_indices)

    def _install_built_statistics(self, tag_indices) -> None:
        """Run one sharded build pass and prime catalog + estimator."""
        built = build_statistics_parallel(
            self.tree,
            self.estimator.grid,
            n_workers=self.n_workers,
            pool=self._ensure_pool(),
            tag_indices=tag_indices,
        )
        self.catalog.install_built(built)
        for tag, histogram in built.position.items():
            self.estimator._position_cache[TagPredicate(tag)] = histogram
        self.estimator._true_hist = built.true_histogram
        for tag, numerators in built.coverage_numerators.items():
            predicate = TagPredicate(tag)
            self._numerators[predicate] = numerators
            self._install_coverage(predicate)

    def _ensure_pool(self):
        """The warm worker pool (``None`` when pools are unavailable --
        the sharded builder then runs its shards in process)."""
        if self.n_workers > 1 and self._pool is None:
            try:
                self._pool = create_pool(self.n_workers)
            except (ImportError, OSError, ValueError):
                self._pool = None
        return self._pool

    def close(self) -> None:
        """Release the worker pool and the write-ahead log (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._wal is not None:
            try:
                self._wal.close()
            except OSError:
                if not self.degraded:
                    raise
                # A degraded service's device may still refuse the
                # closing flush; the log's committed prefix is already
                # durable, so a failed final flush loses nothing acked.
                try:
                    self._wal._fh.close()
                except Exception:
                    pass
            self._wal = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    def rebuild(
        self, from_documents: bool = True, catalog_in_sync: bool = True
    ) -> None:
        """Relabel the whole forest and rebuild every derived structure.

        Summaries that were hot before the rebuild (position histograms,
        the TRUE histogram, maintained coverages) are re-primed eagerly,
        so estimate latency does not regress right after a rebuild.
        Rebuilding re-buckets the label space: the grid's ``max_label``
        (and equi-depth boundaries) are recomputed.

        ``from_documents=False`` is the fast path for internal callers
        whose label table already covers the documents (threshold and
        batch rebuilds): it relabels arithmetically instead of walking
        the documents.  The default stays safe for external callers who
        may have attached document content behind the service's back.
        """
        self._state_lock.acquire()
        try:
            self._rebuild(from_documents, catalog_in_sync)
        finally:
            self._state_lock.release()

    def _rebuild(self, from_documents: bool, catalog_in_sync: bool) -> None:
        primed_positions = list(self.estimator._position_cache)
        primed_coverages = [
            p for p, c in self.estimator._coverage_cache.items() if c is not None
        ]
        primed_true = self.estimator._true_hist is not None
        registered = list(self.catalog.predicates())
        self._build_state(
            from_documents=from_documents, catalog_in_sync=catalog_in_sync
        )
        self.catalog.register_many(registered)
        for predicate in primed_positions:
            self.estimator.position_histogram(predicate)
        if primed_true:
            _ = self.estimator.true_histogram
        for predicate in primed_coverages:
            self._ensure_coverage(predicate)
        self.stats.rebuilds += 1
        self._publish_epoch()
        # Rebuilds relabel the whole forest, so an incremental-state
        # delta against the last full checkpoint is no longer valid.
        self._ckpt_tracker = None
        if self._wal is not None:
            # Rebuilds re-bucket the label space -- every record before
            # this point replays against dead geometry, so bound the
            # replay cost by checkpointing as soon as the in-flight
            # update commits.
            self._checkpoint_requested = True

    # -- size / status -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def dirty_fraction(self) -> float:
        """Touched-node fraction since the last (re)build."""
        return self._dirty_nodes / max(1, len(self.tree))

    # -- read API (delegation, always against current state) ---------------

    def estimate(self, query: Query) -> EstimationResult:
        return self.estimator.estimate(query)

    def estimate_many(self, queries: Sequence[Query]) -> list[EstimationResult]:
        return self.estimator.estimate_many(queries)

    def real_answer(self, query: Query) -> int:
        return self.estimator.real_answer(query)

    def position_histogram(self, predicate: Predicate) -> PositionHistogram:
        return self.estimator.position_histogram(predicate)

    def coverage_histogram(self, predicate: Predicate) -> Optional[CoverageHistogram]:
        """The predicate's coverage histogram, maintained incrementally.

        Builds (and starts maintaining) the integer numerators on first
        use, so later updates patch pair counts instead of re-walking
        the tree.
        """
        coverage = self._ensure_coverage(predicate)
        if coverage is None:
            return self.estimator.coverage_histogram(predicate)
        return coverage

    def execute(self, query: Union[str, PatternTree]) -> ExecutionOutcome:
        """Optimize and run a twig query against the current database.

        The optimizer re-estimates with current statistics: its per-query
        size cache is dropped on every update, so plan choice always
        reflects the post-update histograms.
        """
        pattern = self.estimator._as_pattern(query)
        if self._optimizer is None:
            self._optimizer = Optimizer(self.estimator)
        if self._executor is None:
            self._executor = PlanExecutor(self.tree, self.catalog)
        choice = self._optimizer.choose_plan(pattern)
        bindings, stats = self._executor.execute(pattern, choice.best.plan)
        return ExecutionOutcome(choice=choice, bindings=bindings, stats=stats)

    # -- update API --------------------------------------------------------

    def _check_writable(self, external: bool = True) -> None:
        """Refuse mutations while degraded (sticky until resume).

        On a follower, *external* mutations (client inserts/deletes) are
        refused too -- only the replication apply loop and internal
        maintenance (``external=False``, e.g. checkpoints) may write.
        """
        if self.degraded:
            raise ReadOnlyError(
                f"service is read-only (degraded): {self.degraded_reason}"
            )
        if external and self.follower_of is not None and not self._replaying:
            raise ReadOnlyError(
                f"service is a read replica of {self.follower_of}; "
                "send mutations to the primary"
            )

    def _storage_failure(self, exc: BaseException) -> bool:
        """Record a storage-layer failure.

        Returns ``True`` when the policy turned the service read-only
        (callers then serve reads and reject writes); ``False`` when
        the operator disabled degradation and wants the raw error.
        """
        if not self.read_only_on_wal_error:
            return False
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = f"{type(exc).__name__}: {exc}"
        return True

    def _abort_lost_append(self) -> None:
        """Best-effort abort marker for an append that just failed.

        A failed append's frame can still reach the disk later -- its
        bytes sit in the file buffer and flush on close -- and an
        unmarked batch record is *redo* work at recovery, which would
        silently apply an op this service reported as failed.  Queueing
        an abort marker behind it closes that window: whenever the
        batch frame manages to land, the marker lands with (or after)
        it.  If the device refuses this write too, nothing of either
        frame becomes durable, which is just as consistent.
        ``log_batch`` advances ``next_lsn`` before the write, so the
        lost record's LSN is ``next_lsn - 1``.
        """
        if self._wal is None:
            return
        try:
            self._wal.mark_aborted(self._wal.next_lsn - 1)
        except OSError:
            pass

    def resume_writes(self) -> dict:
        """Operator resume: re-probe the WAL device, clear DEGRADED.

        The failed append may have left a torn record at the log tail
        and the in-memory append handle mid-write, so resuming reopens
        the log from disk -- the constructor scan truncates any torn
        tail, exactly as crash recovery would -- and then forces one
        fsync through the device as the probe.  On probe failure the
        service *stays* degraded (and this raises the probe's
        :class:`~repro.service.protocol.ReadOnlyError`); committed
        state is never at risk either way, because every acknowledged
        mutation's batch record was already durable before it applied.
        """
        with self._state_lock:
            if not self.degraded:
                return {"resumed": False, "mode": "SERVING"}
            if self._wal is None:
                self.degraded = False
                self.degraded_reason = None
                return {"resumed": True, "mode": "SERVING"}
            from repro.service.wal import WriteAheadLog, read_records

            old = self._wal
            # Close the failed handle *first*: its buffer may still hold
            # the torn record's bytes, and close() flushes them (or
            # fails trying -- either way the fd is released).  Whatever
            # lands on disk is exactly what the probe's constructor
            # scan then truncates away, as crash recovery would.
            try:
                old._fh.close()
            except OSError:
                pass
            try:
                scanned = read_records(old.path)
                probe = WriteAheadLog(
                    old.path, scanned, codec=old.codec, faults=old.faults
                )
                # A failed append can still land whole on disk (the
                # buffer flushed on close): an *unmarked* record past
                # the last acknowledged commit is exactly an op this
                # service rolled back and reported failed -- recovery
                # must never redo it.  Abort-mark them now that the
                # device answers again.
                records, _ = scanned
                marked = {
                    r.lsn for r in records if r.type in ("commit", "abort")
                }
                for record in records:
                    if (
                        record.type == "batch"
                        and record.lsn > self._last_lsn
                        and record.lsn not in marked
                    ):
                        probe.mark_aborted(record.lsn)
                probe.sync()
            except OSError as exc:
                raise ReadOnlyError(
                    f"WAL probe failed, still degraded: {exc}"
                ) from exc
            self._wal = probe
            self.degraded = False
            self.degraded_reason = None
            return {
                "resumed": True,
                "mode": "SERVING",
                "next_lsn": probe.next_lsn,
            }

    def _log_update(self, op) -> Optional[int]:
        """Durably log one normalized op as a single-update record.

        Returns its LSN, or ``None`` when no WAL is attached (or the
        service is replaying its own log).  Runs strictly before any
        mutation -- this is the write-ahead discipline.  A storage
        failure here leaves *nothing* applied: the op simply never
        happened, and the service degrades to read-only (policy-gated).
        """
        if self._wal is None or self._replaying:
            return None
        from repro.service.wal import encode_ops

        try:
            return self._wal.log_batch(encode_ops(self, [op]), single=True)
        except OSError as exc:
            self._abort_lost_append()
            if self._storage_failure(exc):
                raise ReadOnlyError(
                    f"write-ahead log failure, entering read-only: {exc}"
                ) from exc
            raise

    def _commit_update(self, lsn: Optional[int]) -> None:
        if lsn is None:
            return
        # mark_committed only buffers (it rides the next fsync), so the
        # commit itself cannot fail here; the checkpoint that may
        # follow can, and its failure must not fail the op -- the op is
        # applied and its batch record is durable (recovery replays an
        # unmarked logged batch), so report success and degrade.
        self._wal.mark_committed(lsn)
        self._note_commit(lsn)
        try:
            self._maybe_checkpoint()
        except OSError as exc:
            if not self._storage_failure(exc):
                raise

    def _note_commit(self, lsn: int) -> None:
        """Advance the committed LSN and wake replication listeners.

        Listener callbacks run under the state lock and must not block:
        the streaming hub only flips a per-subscriber event.
        """
        self._last_lsn = lsn
        for listener in self._commit_listeners:
            try:
                listener(lsn)
            except Exception:
                pass

    def _abort_update(self, lsn: Optional[int]) -> None:
        if lsn is not None:
            try:
                self._wal.mark_aborted(lsn)
            except OSError as exc:
                # The abort marker could not be made durable; recovery
                # will re-attempt the logged batch, fail the same
                # deterministic way, and skip it.  Degrade (the device
                # is failing) but let the original op error propagate.
                self._storage_failure(exc)

    def insert_subtree(
        self,
        parent: Union[Element, int],
        subtree: Element,
        position: Optional[int] = None,
    ) -> UpdateResult:
        """Insert a detached element subtree as a child of ``parent``.

        ``position`` is the 0-based rank the subtree takes among the
        parent's element children (``None`` appends as the last child;
        existing children at that rank and later shift right).  Takes
        labels from the gap at the insertion point and applies exact
        deltas to every maintained summary.  Falls back to a full
        rebuild when the gap cannot hold the subtree or the dirty
        fraction crosses the threshold.  With a write-ahead log
        attached, the update is durably logged before any state
        changes.
        """
        from repro.service.batch import InsertOp

        with self._state_lock:
            self._check_writable()
            lsn = self._log_update(InsertOp(parent, subtree, position))
            try:
                result = self._insert_subtree(parent, subtree, position)
            except BaseException:
                self._abort_update(lsn)
                raise
            self._commit_update(lsn)
            return result

    def _insert_subtree(
        self,
        parent: Union[Element, int],
        subtree: Element,
        position: Optional[int] = None,
    ) -> UpdateResult:
        parent_index = self._resolve(parent)
        if subtree.parent is not None:
            raise ValueError("subtree to insert must be detached (parent is None)")
        self._sync_coverage_numerators()
        try:
            plan = plan_insert(self.tree, parent_index, subtree, position)
        except GapExhausted:
            self._attach_child(self.tree.elements[parent_index], subtree, position)
            size = sum(1 for _ in subtree.iter())
            self.rebuild()
            self.stats.inserts += 1
            self.stats.nodes_inserted += size
            return UpdateResult("insert", size, True, 0, 0, 0.0)

        self._attach_child(self.tree.elements[parent_index], subtree, position)
        apply_insert(self.tree, plan)
        self._track_insert(plan.position, plan.size)
        changed = self.catalog.apply_insert(plan.position, plan.elements)
        invalidated = self._insert_deltas(plan.position, plan.size, changed, parent_index)
        self.stats.inserts += 1
        self.stats.nodes_inserted += plan.size
        return self._finish_update("insert", plan.size, changed, invalidated)

    def delete_subtree(self, node: Union[Element, int]) -> UpdateResult:
        """Delete an element and its whole subtree.

        The freed labels rejoin the gap at the parent; all maintained
        summaries take exact negative deltas.  With a write-ahead log
        attached, the update is durably logged before any state
        changes.
        """
        from repro.service.batch import DeleteOp

        with self._state_lock:
            self._check_writable()
            lsn = self._log_update(DeleteOp(node))
            try:
                result = self._delete_subtree(node)
            except BaseException:
                self._abort_update(lsn)
                raise
            self._commit_update(lsn)
            return result

    def _delete_subtree(self, node: Union[Element, int]) -> UpdateResult:
        index = self._resolve(node)
        self._sync_coverage_numerators()
        sub = self.tree.subtree_slice(index)
        pos, count = sub.start, sub.stop - sub.start
        grid = self.estimator.grid
        cols = grid.buckets(self.tree.start[pos : pos + count])
        rows = grid.buckets(self.tree.end[pos : pos + count])
        pair_deltas = self._delete_pair_deltas(index, pos, count, cols, rows)

        element = self.tree.elements[index]
        element.parent.children.remove(element)
        element.parent = None
        apply_delete(self.tree, index)
        self._track_delete(pos, count)
        changed = self.catalog.apply_delete(pos, count)
        invalidated = self._delete_deltas(pos, cols, rows, changed, pair_deltas)
        self.stats.deletes += 1
        self.stats.nodes_deleted += count
        return self._finish_update("delete", count, changed, invalidated)

    def apply_batch(self, ops) -> "BatchResult":
        """Apply a sequence of insert/delete operations as one batch.

        Operations are ``("insert", parent, subtree[, position])`` /
        ``("delete", node)`` tuples or
        :class:`~repro.service.batch.InsertOp` /
        :class:`~repro.service.batch.DeleteOp` objects, interpreted
        sequentially (the final database state is exactly what one-at-a-
        time application would produce), but all summary maintenance is
        coalesced into one vectorised flush per structure -- see
        :mod:`repro.service.batch`.  The batch is the atomicity unit for
        rebuild decisions; readers holding a :meth:`snapshot` never
        observe a half-applied batch.

        With a write-ahead log attached, the normalized batch is
        serialised, appended, and fsync'd before the first operation
        mutates anything; the record is marked committed once the batch
        applied (or aborted if it rolled back), and a checkpoint is cut
        when the log has grown past the checkpoint interval or a
        rebuild re-bucketed the label space.
        """
        from repro.service.batch import BatchApplier, normalize_ops

        with self._state_lock:
            self._check_writable()
            plan = normalize_ops(ops)
            lsn = None
            if self._wal is not None and not self._replaying and plan:
                from repro.service.wal import encode_ops

                try:
                    lsn = self._wal.log_batch(encode_ops(self, plan))
                except OSError as exc:
                    # Write-ahead discipline: nothing has been applied,
                    # so a failed append *is* the exact rollback.  The
                    # service degrades to read-only (policy-gated).
                    self._abort_lost_append()
                    if self._storage_failure(exc):
                        raise ReadOnlyError(
                            f"write-ahead log failure, entering read-only: {exc}"
                        ) from exc
                    raise
            try:
                result = BatchApplier(self).apply(plan)
            except BaseException as exc:
                if lsn is not None:
                    if getattr(exc, "applied", False):
                        # The batch's operations stayed applied (the flush
                        # failed and a rebuild repaired the summaries):
                        # replaying it at recovery is correct and required.
                        self._wal.mark_committed(lsn)
                        self._note_commit(lsn)
                    else:
                        self._abort_update(lsn)
                raise
            if lsn is not None:
                self._commit_update(lsn)
            return result

    def snapshot(self) -> "ServiceSnapshot":
        """An immutable read view of the current state.

        The snapshot keeps answering from the statistics as they are
        *now*, regardless of updates, batches, or rebuilds applied to
        the service afterwards -- see :mod:`repro.service.snapshot`.
        """
        from repro.service.snapshot import ServiceSnapshot

        with self._state_lock:
            return ServiceSnapshot(self)

    @staticmethod
    def _attach_child(
        parent: Element, subtree: Element, position: Optional[int]
    ) -> None:
        """Attach ``subtree`` under ``parent`` at element-child rank
        ``position`` (``None`` / past-the-end appends), preserving the
        relative order of any interleaved text nodes."""
        if position is None:
            parent.append(subtree)
            return
        if position < 0:
            raise ValueError(f"child position must be >= 0, got {position}")
        element_rank = 0
        for slot, child in enumerate(parent.children):
            if isinstance(child, Element):
                if element_rank == position:
                    subtree.parent = parent
                    parent.children.insert(slot, subtree)
                    return
                element_rank += 1
        parent.append(subtree)

    # -- differential self-check -------------------------------------------

    def differential_check(self, queries: Sequence[Query] = ()) -> None:
        """Assert every maintained structure is bit-identical to a
        from-scratch build over the current tree.

        This is the correctness contract of incremental maintenance; the
        differential test suite runs it after hundreds of random update
        sequences, and the benchmark runs it once before timing.
        Raises :class:`AssertionError` on the first divergence.
        """
        reference = AnswerSizeEstimator(self.tree, grid_size=self.grid_size)
        reference.grid = self.estimator.grid  # same frozen bucket geometry
        for predicate, stats in list(self.catalog._stats.items()):
            ref_stats = reference.catalog.stats(predicate)
            assert np.array_equal(stats.node_indices, ref_stats.node_indices), (
                f"catalog drift for {predicate.name!r}"
            )
            assert stats.count == ref_stats.count, predicate.name
            assert stats.no_overlap == ref_stats.no_overlap, (
                f"no-overlap drift for {predicate.name!r}"
            )
        for predicate, histogram in self.estimator._position_cache.items():
            fresh = reference.position_histogram(predicate)
            assert dict(histogram.cells()) == dict(fresh.cells()), (
                f"position histogram drift for {predicate.name!r}"
            )
        if self.estimator._true_hist is not None:
            assert dict(self.estimator._true_hist.cells()) == dict(
                reference.true_histogram.cells()
            ), "TRUE histogram drift"
        for predicate, coverage in self.estimator._coverage_cache.items():
            fresh_cov = reference.coverage_histogram(predicate)
            assert (coverage is None) == (fresh_cov is None), (
                f"coverage presence drift for {predicate.name!r}"
            )
            if coverage is not None:
                assert dict(coverage.entries()) == dict(fresh_cov.entries()), (
                    f"coverage histogram drift for {predicate.name!r}"
                )
        for predicate, level_hist in self.estimator._level_cache.items():
            fresh_level = reference.level_histogram(predicate)
            assert dict(level_hist.cells()) == dict(fresh_level.cells()), (
                f"level histogram drift for {predicate.name!r}"
            )
        for query in queries:
            ours = self.estimate(query).value
            theirs = reference.estimate(query).value
            assert ours == theirs, (
                f"estimate drift for {query!r}: {ours} != {theirs}"
            )

    # -- durability ---------------------------------------------------------

    def _attach_wal(
        self,
        wal,
        directory: Path,
        checkpoint_every: int,
        last_lsn: int,
        keep_checkpoints: Optional[int] = None,
        auto_compact: bool = False,
    ) -> None:
        """Adopt an open write-ahead log: every later update is logged
        before it applies (see :mod:`repro.service.wal`)."""
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint interval must be >= 1, got {checkpoint_every}"
            )
        if keep_checkpoints is not None and keep_checkpoints < 1:
            raise ValueError(
                f"checkpoint retention must keep >= 1, got {keep_checkpoints}"
            )
        self._wal = wal
        self._wal_dir = Path(directory)
        self._checkpoint_every = checkpoint_every
        self._last_lsn = last_lsn
        self._last_checkpoint_lsn = last_lsn
        self._checkpoint_requested = False
        self._keep_checkpoints = keep_checkpoints
        self._auto_compact = auto_compact

    @property
    def wal_attached(self) -> bool:
        return self._wal is not None

    def attach_fault_plan(self, plan) -> None:
        """Arm a :class:`~repro.service.faults.FaultPlan` over this
        service's storage operations (WAL appends/fsyncs, checkpoint
        writes/renames, directory fsyncs)."""
        self._fault_plan = plan
        if self._wal is not None:
            self._wal.faults = plan

    # -- incremental-checkpoint splice tracker ------------------------------

    def _reset_tracker(self) -> None:
        """Re-base the tracker on the current tree (after a full
        checkpoint archived exactly this state)."""
        self._ckpt_tracker = np.arange(len(self.tree), dtype=np.int64)

    def _track_insert(self, position: int, size: int) -> None:
        """Compose an insert splice into the checkpoint tracker.

        The tracker maps each current pre-order index to its index in
        the last *full* checkpoint (``-1`` for nodes inserted since);
        like the label arrays, it is replaced rather than mutated, so a
        pre-batch reference doubles as the rollback image.
        """
        if self._ckpt_tracker is not None:
            self._ckpt_tracker = np.insert(
                self._ckpt_tracker,
                position,
                np.full(size, -1, dtype=np.int64),
            )

    def _track_delete(self, position: int, count: int) -> None:
        if self._ckpt_tracker is not None:
            self._ckpt_tracker = np.delete(
                self._ckpt_tracker, np.s_[position : position + count]
            )

    def _maybe_checkpoint(self) -> None:
        if self._wal is None or self._replaying:
            return
        due = self._last_lsn - self._last_checkpoint_lsn >= self._checkpoint_every
        if due or self._checkpoint_requested:
            self.checkpoint()

    def checkpoint(self, full: bool = False) -> int:
        """Cut a checkpoint at the last committed LSN.

        Forces buffered commit markers to disk first, then persists the
        summary store plus the recoverable state; recovery replays only
        the log suffix past the newest valid checkpoint.  Checkpoints
        are *incremental* when a valid delta base exists (see
        :func:`repro.service.wal.write_checkpoint`); ``full=True``
        forces a self-contained checkpoint.  With a retention bound
        configured (``keep_checkpoints``), superseded checkpoints are
        pruned afterwards -- never a checkpoint the kept ones still
        reference -- and with ``auto_compact`` the log is compacted
        below the oldest live checkpoint.  Returns the checkpoint's
        LSN.
        """
        from repro.service.wal import compact, prune_checkpoints, write_checkpoint

        with self._state_lock:
            if self._wal is None:
                raise ValueError("no write-ahead log attached to checkpoint")
            # Internal maintenance: followers checkpoint their own
            # directory too (external=False skips the replica gate).
            self._check_writable(external=False)
            self._wal.sync()
            write_checkpoint(self, self._wal_dir, self._last_lsn, force_full=full)
            self._last_checkpoint_lsn = self._last_lsn
            self._checkpoint_requested = False
            if self._auto_compact:
                compact(
                    self._wal_dir,
                    keep_checkpoints=self._keep_checkpoints,
                    wal=self._wal,
                )
            elif self._keep_checkpoints is not None:
                prune_checkpoints(self._wal_dir, self._keep_checkpoints)
            return self._last_lsn

    def compact(self) -> "object":
        """Compact the attached write-ahead log directory now.

        Drops log records at or below the oldest checkpoint worth
        keeping, prunes superseded checkpoints and orphaned files; see
        :func:`repro.service.wal.compact`.  Returns its stats.
        """
        from repro.service.wal import compact

        if self._wal is None:
            raise ValueError("no write-ahead log attached to compact")
        return compact(
            self._wal_dir,
            keep_checkpoints=self._keep_checkpoints,
            wal=self._wal,
        )

    @classmethod
    def open_durable(
        cls,
        directory: Union[str, Path],
        documents: Union[Document, Sequence[Document], None] = None,
        *,
        grid_size: int = 10,
        grid: str = "uniform",
        spacing: int = 64,
        rebuild_threshold: float = 0.25,
        n_workers: int = 1,
        checkpoint_every: int = 16,
        keep_checkpoints: Optional[int] = None,
        auto_compact: bool = False,
        lazy: bool = False,
    ) -> "EstimationService":
        """Open (or initialise) a crash-recoverable service.

        ``directory`` holds the write-ahead log and its checkpoints.  If
        it already contains durable state, the service is *recovered*:
        the newest valid checkpoint is loaded and the committed log
        suffix is replayed through the normal update paths, yielding
        state bit-identical to an uninterrupted run over the committed
        prefix (a torn log tail is checksum-detected and truncated,
        never partially replayed); ``documents`` and the configuration
        keywords are then ignored, and ``service.recovery_info`` reports
        what recovery did.  A fresh directory requires ``documents`` and
        writes an initial checkpoint before the first update is
        accepted.

        ``lazy=True`` maps the newest page-file checkpoint instead of
        materialising the forest: estimates over the persisted tag
        predicates serve straight from the mapping, and element objects
        are decoded on first structural touch (see
        :func:`repro.service.wal.open_durable`).
        """
        from repro.service.wal import open_durable as _open_durable

        return _open_durable(
            directory,
            documents,
            grid_size=grid_size,
            grid=grid,
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
            n_workers=n_workers,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            auto_compact=auto_compact,
            lazy=lazy,
        )

    # -- persistence --------------------------------------------------------

    def save_statistics(self, path: Union[str, Path]) -> int:
        """Persist all built histograms as a versioned binary store."""
        with self._state_lock:
            return save_binary_summaries(self.estimator, path)

    @classmethod
    def warm_start(
        cls,
        documents: Union[Document, Sequence[Document]],
        path: Union[str, Path],
        spacing: int = 64,
        rebuild_threshold: float = 0.25,
        n_workers: int = 1,
    ) -> "EstimationService":
        """Start a service from persisted statistics, skipping histogram
        builds for every tag predicate in the store.

        The documents (and ``spacing``) must be the ones the store was
        saved from: the persisted fingerprint (labels + tag sequence,
        exactly what the installed histograms depend on) must match the
        freshly labeled documents, and a mismatch raises
        :class:`~repro.histograms.store.SummaryFormatError` rather than
        serving stale estimates.
        """
        loaded = load_binary_summaries(path)
        # Cold-start serially -- the store replaces the build the
        # sharded path would do (and fixes the grid only after the
        # constructor) -- then adopt ``n_workers`` for later rebuilds.
        service = cls(
            documents,
            grid_size=loaded.grid.size,
            spacing=spacing,
            rebuild_threshold=rebuild_threshold,
        )
        service.n_workers = n_workers
        if loaded.grid.max_label != service.tree.max_label:
            raise SummaryFormatError(
                f"stale statistics: persisted label space "
                f"[0, {loaded.grid.max_label}] does not match the documents' "
                f"[0, {service.tree.max_label}] (document or spacing changed)"
            )
        if loaded.fingerprint != tree_fingerprint(service.tree):
            raise SummaryFormatError(
                "stale statistics: the persisted document fingerprint does "
                "not match these documents (content changed since the save)"
            )
        service.estimator.grid = loaded.grid
        service.grid_kind = "equi-depth" if loaded.grid.boundaries else "uniform"
        for row in loaded.summaries:
            if row.kind != "tag" or row.tag is None:
                continue
            predicate = TagPredicate(row.tag)
            # Register before installing: a predicate with a cached
            # histogram MUST be catalog-tracked, or later updates would
            # not know which inserted/deleted nodes it matches and the
            # installed histogram would silently drift.
            service.catalog.register(predicate)
            service.estimator._position_cache[predicate] = row.position
            if row.coverage is not None:
                service.estimator._coverage_cache[predicate] = row.coverage
        return service

    # -- internals -----------------------------------------------------------

    def _resolve(self, node: Union[Element, int]) -> int:
        if isinstance(node, Element):
            return self.tree.index_of(node)
        index = int(node)
        if not 0 <= index < len(self.tree):
            raise IndexError(f"node index {index} outside the tree")
        return index

    def _finish_update(
        self,
        kind: str,
        nodes: int,
        changed: dict[Predicate, np.ndarray],
        invalidated: int,
    ) -> UpdateResult:
        self._dirty_nodes += nodes
        self._optimizer = None
        self._executor = None
        self._publish_epoch()
        self.stats.coefficient_invalidations += invalidated
        rebuilt = False
        if self._dirty_nodes > self.rebuild_threshold * max(1, len(self.tree)):
            self.rebuild(from_documents=False)
            rebuilt = True
        return UpdateResult(
            kind=kind,
            nodes=nodes,
            rebuilt=rebuilt,
            predicates_changed=len(changed),
            coefficients_invalidated=invalidated,
            dirty_fraction=self.dirty_fraction,
        )

    # -- coverage numerator maintenance --------------------------------------

    def _ensure_coverage(self, predicate: Predicate) -> Optional[CoverageHistogram]:
        stats = self.catalog.stats(predicate)
        if not stats.effective_no_overlap:
            return None
        if predicate not in self._numerators:
            self._numerators[predicate] = build_coverage_numerators(
                self.tree, stats.node_indices, self.estimator.grid
            )
            self._install_coverage(predicate)
        cached = self.estimator._coverage_cache.get(predicate)
        if cached is None:
            self._install_coverage(predicate)
            cached = self.estimator._coverage_cache[predicate]
        return cached

    def _install_coverage(self, predicate: Predicate) -> None:
        self.estimator._coverage_cache[predicate] = coverage_from_numerators(
            self._numerators[predicate],
            self.estimator.true_histogram,
            name=predicate.name,
        )

    def _sync_coverage_numerators(self) -> None:
        """Adopt coverages the estimator built on its own.

        Estimation through the facade may build a coverage histogram the
        service has no numerators for; before mutating the tree, count
        its pairs so the update below can delta-patch them.
        """
        for predicate, coverage in list(self.estimator._coverage_cache.items()):
            if coverage is not None and predicate not in self._numerators:
                self._numerators[predicate] = build_coverage_numerators(
                    self.tree,
                    self.catalog.stats(predicate).node_indices,
                    self.estimator.grid,
                )

    def _nearest_member(self, node: int, members: np.ndarray) -> int:
        """Nearest ancestor-or-self of ``node`` in a sorted index array
        (``-1`` when the chain reaches a document root without a hit)."""
        while node != -1:
            slot = int(np.searchsorted(members, node))
            if slot < len(members) and int(members[slot]) == node:
                return node
            node = int(self.tree.parent_index[node])
        return -1

    def _cell(self, index: int) -> tuple[int, int]:
        grid = self.estimator.grid
        return (
            grid.bucket(int(self.tree.start[index])),
            grid.bucket(int(self.tree.end[index])),
        )

    def _slice_ancestors(
        self,
        pos: int,
        size: int,
        members: np.ndarray,
        outside_ancestor: int,
    ) -> np.ndarray:
        """Nearest covering member for each node of a pre-order slice.

        ``members`` holds sorted global indices of predicate nodes
        inside the slice; nodes whose chain leaves the slice inherit
        ``outside_ancestor`` (the unique covering node beyond the slice
        for a no-overlap predicate, or ``-1``).  All chains step
        together, one vectorized round per ancestor level.
        """
        parent_index = self.tree.parent_index
        current = parent_index[pos : pos + size].copy()
        nearest = np.full(size, outside_ancestor, dtype=np.int64)
        active = np.flatnonzero(current >= pos)
        while active.size:
            walk = current[active]
            if members.size:
                slot = np.minimum(
                    np.searchsorted(members, walk), len(members) - 1
                )
                hit = members[slot] == walk
            else:
                hit = np.zeros(len(walk), dtype=bool)
            nearest[active[hit]] = walk[hit]
            rest = active[~hit]
            current[rest] = parent_index[current[rest]]
            active = rest[current[rest] >= pos]
        return nearest

    def _insert_deltas(
        self,
        pos: int,
        size: int,
        changed: dict[Predicate, np.ndarray],
        parent_index: int,
    ) -> int:
        """Patch every maintained summary for an insert at ``pos``."""
        estimator = self.estimator
        grid = estimator.grid
        cols = grid.buckets(self.tree.start[pos : pos + size])
        rows = grid.buckets(self.tree.end[pos : pos + size])
        if estimator._true_hist is not None:
            estimator._true_hist.apply_delta(cols, rows, 1)

        invalidated = 0
        for predicate, inserted in changed.items():
            local = inserted - pos
            histogram = estimator._position_cache.get(predicate)
            if histogram is not None:
                histogram.apply_delta(cols[local], rows[local], 1)
            invalidated += estimator.invalidate_derived(predicate)
            if predicate not in self._numerators:
                # Membership changed under a coverage the service does
                # not maintain: force a from-scratch rebuild on next use.
                estimator._coverage_cache.pop(predicate, None)

        empty = np.empty(0, dtype=np.int64)
        for predicate in list(self._numerators):
            stats = self.catalog.stats(predicate)
            if not stats.effective_no_overlap:
                del self._numerators[predicate]
                self.estimator._coverage_cache.pop(predicate, None)
                continue
            inserted = changed.get(predicate)
            members = np.sort(inserted) if inserted is not None else empty
            outside = self._nearest_member(parent_index, stats.node_indices)
            nearest = self._slice_ancestors(pos, size, members, outside)
            codes, counts = self._pair_codes(cols, rows, nearest)
            self._numerators[predicate] = self._numerators[predicate].patch(
                codes, counts, empty, empty, owner=predicate.name
            )
            self._install_coverage(predicate)
        return invalidated

    def _pair_codes(
        self, cols: np.ndarray, rows: np.ndarray, nearest: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed coverage pair codes with counts for slice nodes whose
        nearest covering member is ``nearest[k]`` (-1 = uncovered)."""
        grid = self.estimator.grid
        g = grid.size
        valid = np.flatnonzero(nearest >= 0)
        if valid.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        ancestors = nearest[valid]
        keys = (cols[valid] * g + rows[valid]) * (g * g) + (
            grid.buckets(self.tree.start[ancestors]) * g
            + grid.buckets(self.tree.end[ancestors])
        )
        return np.unique(keys, return_counts=True)

    def _delete_pair_deltas(
        self,
        index: int,
        pos: int,
        count: int,
        cols: np.ndarray,
        rows: np.ndarray,
    ) -> dict[Predicate, tuple[np.ndarray, np.ndarray]]:
        """Coverage pairs lost with the subtree at ``index`` (computed
        against the pre-delete tree, which the walk requires)."""
        deltas: dict[Predicate, tuple[np.ndarray, np.ndarray]] = {}
        root_parent = int(self.tree.parent_index[index])
        for predicate in self._numerators:
            members_arr = self.catalog.stats(predicate).node_indices
            lo = int(np.searchsorted(members_arr, pos))
            hi = int(np.searchsorted(members_arr, pos + count))
            outside = (
                self._nearest_member(root_parent, members_arr)
                if root_parent != -1
                else -1
            )
            nearest = self._slice_ancestors(pos, count, members_arr[lo:hi], outside)
            deltas[predicate] = self._pair_codes(cols, rows, nearest)
        return deltas

    def _delete_deltas(
        self,
        pos: int,
        cols: np.ndarray,
        rows: np.ndarray,
        changed: dict[Predicate, np.ndarray],
        pair_deltas: dict[Predicate, tuple[np.ndarray, np.ndarray]],
    ) -> int:
        """Patch every maintained summary for a completed delete."""
        estimator = self.estimator
        if estimator._true_hist is not None:
            estimator._true_hist.apply_delta(cols, rows, -1)

        invalidated = 0
        for predicate, removed in changed.items():
            local = removed - pos
            histogram = estimator._position_cache.get(predicate)
            if histogram is not None:
                histogram.apply_delta(cols[local], rows[local], -1)
            invalidated += estimator.invalidate_derived(predicate)
            if predicate not in self._numerators:
                estimator._coverage_cache.pop(predicate, None)

        empty = np.empty(0, dtype=np.int64)
        for predicate, (lost_codes, lost_counts) in pair_deltas.items():
            self._numerators[predicate] = self._numerators[predicate].patch(
                empty, empty, lost_codes, lost_counts, owner=predicate.name
            )
            self._install_coverage(predicate)
        return invalidated
