"""Online statistics service: estimation state kept correct under updates.

The offline layers build histograms in one pass over a frozen document;
this package owns a *live* database -- the labeled tree, its predicate
catalog, and every histogram -- and keeps all of it consistent while
documents take inserts and deletes, the way a production optimizer's
statistics subsystem must.  See
:class:`~repro.service.service.EstimationService`.
"""

from repro.service.batch import BatchError, BatchResult, DeleteOp, InsertOp
from repro.service.client import (
    ClientSnapshot,
    ClientTimeout,
    ReplicaSet,
    ServiceClient,
    ServiceError,
)
from repro.service.faults import FaultPlan, FaultRule
from repro.service.protocol import (
    MAX_LINE_BYTES,
    CodedError,
    OverloadedError,
    ProtocolError,
    ReadOnlyError,
    ShuttingDownError,
    StaleLsnError,
)
from repro.service.replica import (
    Follower,
    ReplicaError,
    ReplicationHub,
    StaleFollowerError,
    bootstrap_follower,
)
from repro.service.server import EstimationServer, ServiceEngine
from repro.service.service import EstimationService, ServiceStats, UpdateResult
from repro.service.snapshot import ServiceSnapshot
from repro.service.wal import (
    CompactStats,
    RecoveryInfo,
    WalError,
    WalTailer,
    WriteAheadLog,
    compact,
)

__all__ = [
    "BatchError",
    "BatchResult",
    "ClientSnapshot",
    "ClientTimeout",
    "CodedError",
    "CompactStats",
    "DeleteOp",
    "EstimationServer",
    "EstimationService",
    "FaultPlan",
    "FaultRule",
    "Follower",
    "InsertOp",
    "MAX_LINE_BYTES",
    "OverloadedError",
    "ProtocolError",
    "ReadOnlyError",
    "ReplicaError",
    "ReplicaSet",
    "ReplicationHub",
    "ShuttingDownError",
    "StaleFollowerError",
    "StaleLsnError",
    "RecoveryInfo",
    "ServiceClient",
    "ServiceEngine",
    "ServiceError",
    "ServiceSnapshot",
    "ServiceStats",
    "UpdateResult",
    "WalError",
    "WalTailer",
    "WriteAheadLog",
    "bootstrap_follower",
    "compact",
]
