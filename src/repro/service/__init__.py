"""Online statistics service: estimation state kept correct under updates.

The offline layers build histograms in one pass over a frozen document;
this package owns a *live* database -- the labeled tree, its predicate
catalog, and every histogram -- and keeps all of it consistent while
documents take inserts and deletes, the way a production optimizer's
statistics subsystem must.  See
:class:`~repro.service.service.EstimationService`.
"""

from repro.service.batch import BatchError, BatchResult, DeleteOp, InsertOp
from repro.service.client import ClientSnapshot, ServiceClient, ServiceError
from repro.service.protocol import MAX_LINE_BYTES, ProtocolError
from repro.service.server import EstimationServer, ServiceEngine
from repro.service.service import EstimationService, ServiceStats, UpdateResult
from repro.service.snapshot import ServiceSnapshot
from repro.service.wal import (
    CompactStats,
    RecoveryInfo,
    WalError,
    WriteAheadLog,
    compact,
)

__all__ = [
    "BatchError",
    "BatchResult",
    "ClientSnapshot",
    "CompactStats",
    "DeleteOp",
    "EstimationServer",
    "EstimationService",
    "InsertOp",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "RecoveryInfo",
    "ServiceClient",
    "ServiceEngine",
    "ServiceError",
    "ServiceSnapshot",
    "ServiceStats",
    "UpdateResult",
    "WalError",
    "WriteAheadLog",
    "compact",
]
