"""Batched update application for the estimation service.

:meth:`~repro.service.service.EstimationService.apply_batch` applies a
whole sequence of subtree inserts and deletes as one unit.  The final
database state is exactly what applying the operations one at a time
would produce (operations are interpreted *sequentially*: an index
refers to the tree as left by the operations before it, and a node
inserted earlier in the batch can be the parent -- or the victim -- of
a later operation).  What changes is the maintenance cost model:

* the **label splices** run in one pass over the operations
  (:func:`repro.labeling.dynamic.plan_insert` /
  :func:`~repro.labeling.dynamic.apply_insert` /
  :func:`~repro.labeling.dynamic.apply_delete`), tracking every node's
  position through the batch with vectorised shift arrays;
* operations **coalesce**: a node inserted and then deleted inside the
  same batch contributes to no summary at all, and every summary sees
  only the batch's *net* node deltas;
* the **position and TRUE histograms** take one signed accumulation
  flush each (:meth:`~repro.histograms.position.PositionHistogram.apply_signed_delta`)
  instead of per-update passes;
* the **catalog** rebuilds each predicate's index array with one
  vectorised gather + merge (:meth:`~repro.predicates.catalog.PredicateCatalog.apply_batch`),
  re-checking no-overlap once per predicate;
* **coverage numerators** are patched from two vectorised
  nearest-member passes (net-deleted nodes against the pre-batch label
  table, net-inserted nodes against the post-batch one), and each
  coverage histogram's fractions are re-derived once;
* every touched **pH-join coefficient / level histogram** is
  invalidated once per batch.

The batch is also the atomicity unit for rebuild decisions: the dirty
threshold is evaluated once against the batch's total touched nodes.
A label-gap exhaustion mid-batch first tries a *local* rebalance
(:func:`repro.labeling.dynamic.rebalance_for_insert`): labels are
respread inside the smallest ancestor region wide enough to make room,
the moved slice's surviving nodes are re-filed in every maintained
summary by the flush (``-old`` / ``+new`` cells), and the batch stays
on the incremental path.  Only when no ancestor region is wide enough
does the batch fall back to relabeling the whole forest and finishing
under a full statistics rebuild.  Batches are atomic with respect
to failures: every operation's document-model mutation is journalled as
it is applied, and if a later operation fails -- even half-way through
its own splice -- the journal is unwound and the pre-batch label arrays
are restored, so the service is left bit-identical to its pre-batch
state before :class:`BatchError` propagates.  (Summary maintenance has
not started at that point: histograms, catalog, and coverage numerators
are only touched by the flush, which runs after every operation
succeeded.)  A failure *inside* the flush is repaired with a full
rebuild instead -- the batch's operations stay applied
(``BatchError.applied`` distinguishes the two outcomes for durability
layers that must decide between replaying and skipping the batch).

Net-delta correctness rests on two invariants of subtree updates: a
surviving node's labels and ancestor chain never change within a batch
(splices never relabel or reparent existing nodes; the one exception,
a local rebalance, reports exactly which slice it moved so the flush
can re-file those nodes), and a deleted node's covering predicate
ancestors are deleted with it only if the node itself is inside the
deleted subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.histograms.coverage import CellPair
from repro.histograms.grid import GridSpec
from repro.labeling.dynamic import (
    GapExhausted,
    apply_delete,
    apply_insert,
    plan_insert,
    rebalance_for_insert,
)
from repro.labeling.interval import label_forest, relabel_preorder
from repro.predicates.base import Predicate
from repro.xmltree.tree import Element

Target = Union[Element, int]


@dataclass
class InsertOp:
    """Insert ``subtree`` under ``parent`` at element-child rank
    ``position`` (``None`` appends as the last child)."""

    parent: Target
    subtree: Element
    position: Optional[int] = None


@dataclass
class DeleteOp:
    """Delete ``node`` and its whole subtree."""

    node: Target


BatchOp = Union[InsertOp, DeleteOp, tuple]


@dataclass
class BatchResult:
    """What one :meth:`~repro.service.service.EstimationService.apply_batch`
    call did."""

    ops: int
    inserts: int
    deletes: int
    nodes_inserted: int
    nodes_deleted: int
    rebuilt: bool
    predicates_changed: int
    coefficients_invalidated: int
    dirty_fraction: float


class BatchError(RuntimeError):
    """A batch failed part-way through.

    ``applied`` tells what state the service was left in:

    * ``False`` -- an *operation* failed: the batch was rolled back and
      the service is bit-identical to its pre-batch state (labels,
      structure, and every maintained summary untouched);
    * ``True`` -- every operation applied but the summary *flush*
      failed: the post-batch document state stays, and the service was
      re-synchronised with a full statistics rebuild.

    Durability layers use the flag to mark the batch's write-ahead-log
    record committed (``True``) or aborted (``False``).
    """

    def __init__(self, message: str, applied: bool = False) -> None:
        super().__init__(message)
        self.applied = applied


def normalize_ops(ops: Sequence[BatchOp]) -> list[Union[InsertOp, DeleteOp]]:
    """Accept ``InsertOp``/``DeleteOp`` objects or plain tuples
    (``("insert", parent, subtree[, position])`` / ``("delete", node)``)."""
    out: list[Union[InsertOp, DeleteOp]] = []
    for op in ops:
        if isinstance(op, (InsertOp, DeleteOp)):
            out.append(op)
            continue
        kind = op[0]
        if kind == "insert":
            if len(op) == 3:
                out.append(InsertOp(op[1], op[2]))
            elif len(op) == 4:
                out.append(InsertOp(op[1], op[2], op[3]))
            else:
                raise ValueError(f"malformed insert op {op!r}")
        elif kind == "delete":
            if len(op) != 2:
                raise ValueError(f"malformed delete op {op!r}")
            out.append(DeleteOp(op[1]))
        else:
            raise ValueError(f"unknown batch op kind {kind!r}")
    return out


@dataclass
class _InsertRecord:
    """One applied insert, with its nodes' positions tracked through
    every later operation of the batch."""

    elements: list[Element]
    positions: np.ndarray
    alive: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.alive is None:
            self.alive = np.ones(len(self.elements), dtype=bool)


class BatchApplier:
    """Single-use applier for one update batch over one service."""

    def __init__(self, service) -> None:
        self.service = service
        self.tree = service.tree
        self.records: list[_InsertRecord] = []
        self.inserted_slot: dict[int, tuple[_InsertRecord, int]] = {}
        self.deleted_old: list[np.ndarray] = []
        self.touched = 0
        self.inserts = 0
        self.deletes = 0
        self.nodes_inserted = 0
        self.nodes_deleted = 0
        self.degraded = False
        self.rebalances = 0
        # Pre-batch indices of surviving nodes whose labels a local
        # rebalance moved; the flush re-files their cells (-old/+new).
        self.moved_old = np.empty(0, dtype=np.int64)
        self._initial_index: Optional[dict[int, int]] = None
        # Document-model journal for rollback: ("insert", subtree_root)
        # and ("delete", element, parent, child_slot) entries in apply
        # order, recorded *before* each mutation so a failure half-way
        # through an operation is still unwound.
        self._undo: list[tuple] = []

    # -- public entry ------------------------------------------------------

    def apply(self, ops: Sequence[BatchOp]) -> BatchResult:
        service = self.service
        plan = normalize_ops(ops)
        if not plan:
            return BatchResult(0, 0, 0, 0, 0, False, 0, 0, service.dirty_fraction)
        service._sync_coverage_numerators()

        # Element handles resolve through the pre-batch numbering plus
        # position tracking; the index must be frozen before the first
        # splice shifts anything.
        if any(
            isinstance(op.parent if isinstance(op, InsertOp) else op.node, Element)
            for op in plan
        ):
            self._initial_index = {
                id(e): i for i, e in enumerate(self.tree.elements)
            }

        # Pre-batch view: splices replace every container (the element
        # list included) rather than mutating them, so plain references
        # are a consistent snapshot -- and double as the rollback image.
        self.start0 = self.tree.start
        self.end0 = self.tree.end
        self.parent0 = self.tree.parent_index
        self.level0 = self.tree.level
        self.max_label0 = self.tree.max_label
        self.elements0 = self.tree.elements
        self.tracker0 = service._ckpt_tracker  # replaced, never mutated
        self.orig_pos = np.arange(len(self.tree), dtype=np.int64)

        applied = 0
        try:
            for op in plan:
                if isinstance(op, InsertOp):
                    self._apply_insert(op)
                else:
                    self._apply_delete(op)
                applied += 1
        except Exception as exc:
            self._rollback()
            if applied == 0:
                raise  # first operation failed; pre-batch state restored
            raise BatchError(
                f"batch operation {applied} failed after {applied} earlier "
                f"operation(s) were applied; the batch was rolled back and "
                f"the service is in its pre-batch state: {exc}",
                applied=False,
            ) from exc

        predicted = service._dirty_nodes + self.touched
        threshold = service.rebuild_threshold * max(1, len(self.tree))
        if self.degraded or predicted > threshold:
            service._dirty_nodes = predicted
            try:
                service.rebuild(from_documents=False, catalog_in_sync=False)
            except Exception as exc:
                # The operations are all applied; only the eager
                # rebuild died.  Flag that for durability layers (the
                # record must replay, not be skipped).
                raise BatchError(
                    f"rebuild failed after all {applied} operation(s) were "
                    f"applied: {exc}",
                    applied=True,
                ) from exc
            self._count_into_stats()
            return self._result(rebuilt=True, changed=0, invalidated=0)

        try:
            changed, invalidated = self._flush_deltas()
        except Exception as exc:
            # Operations are all applied; only summary maintenance is
            # suspect.  Re-derive everything from the (consistent)
            # post-batch label table.
            service._dirty_nodes = predicted
            service.rebuild(from_documents=False, catalog_in_sync=False)
            self._count_into_stats()
            raise BatchError(
                f"summary flush failed after all {applied} operation(s) were "
                f"applied; service rebuilt to stay consistent: {exc}",
                applied=True,
            ) from exc
        service._dirty_nodes = predicted
        service._optimizer = None
        service._executor = None
        service._publish_epoch()
        self._count_into_stats()
        service.stats.coefficient_invalidations += invalidated
        return self._result(rebuilt=False, changed=changed, invalidated=invalidated)

    def _rollback(self) -> None:
        """Unwind every document-model mutation and restore the
        pre-batch label table, leaving the service bit-identical to its
        state when :meth:`apply` was entered.

        Safe against half-applied operations: journal entries are
        recorded before the mutations they describe, and the label
        arrays are restored wholesale from the pre-batch references
        (splices and relabels replace arrays rather than writing into
        them, so those references are still the pre-batch values).
        Catalog, histograms, and coverage numerators need no undo --
        the flush that touches them only runs after every operation
        succeeded.
        """
        for entry in reversed(self._undo):
            if entry[0] == "insert":
                subtree = entry[1]
                if subtree.parent is not None:
                    subtree.parent.children.remove(subtree)
                    subtree.parent = None
            else:
                _, element, parent, slot = entry
                element.parent = parent
                parent.children.insert(slot, element)
        self.tree.replace_contents(
            self.elements0,
            self.start0,
            self.end0,
            self.level0,
            self.parent0,
            self.max_label0,
        )
        self.service._ckpt_tracker = self.tracker0

    # -- splice pass -------------------------------------------------------

    def _resolve(self, target: Target) -> int:
        """Current pre-order index of an operation target.

        Integers are interpreted against the tree as already mutated by
        the batch's earlier operations (sequential semantics); elements
        resolve through the position tracking, so handles stay valid no
        matter how earlier operations shifted the numbering.
        """
        if not isinstance(target, Element):
            index = int(target)
            if not 0 <= index < len(self.tree):
                raise IndexError(f"node index {index} outside the tree")
            return index
        key = id(target)
        slot = self.inserted_slot.get(key)
        if slot is not None:
            record, local = slot
            if not record.alive[local]:
                raise ValueError(
                    "operation targets a node deleted earlier in the batch"
                )
            return int(record.positions[local])
        if self._initial_index is None:
            raise ValueError("operation targets an element not in the tree")
        initial = self._initial_index.get(key)
        if initial is None:
            raise ValueError("operation targets an element not in the tree")
        current = int(self.orig_pos[initial])
        if current < 0:
            raise ValueError(
                "operation targets a node deleted earlier in the batch"
            )
        return current

    def _shift_up(self, position: int, size: int) -> None:
        self.orig_pos[self.orig_pos >= position] += size
        for record in self.records:
            record.positions[record.positions >= position] += size

    def _apply_insert(self, op: InsertOp) -> None:
        parent_index = self._resolve(op.parent)
        subtree = op.subtree
        if subtree.parent is not None:
            raise ValueError("subtree to insert must be detached (parent is None)")
        try:
            plan = plan_insert(self.tree, parent_index, subtree, op.position)
        except GapExhausted:
            plan = self._rebalanced_plan(parent_index, subtree, op.position)
            if plan is None:
                self.degraded = True
                # The relabel moves every surviving node's labels, so
                # the incremental-state delta against the last full
                # checkpoint no longer describes this tree.  (Rollback
                # restores the pre-batch tracker; the degraded batch
                # otherwise ends in a rebuild, which keeps it
                # invalidated.)
                self.service._ckpt_tracker = None
                relabel_preorder(self.tree, self.service.spacing)
                try:
                    plan = plan_insert(
                        self.tree, parent_index, subtree, op.position
                    )
                except GapExhausted:
                    self._oversized_insert(parent_index, op)
                    return
        self._undo.append(("insert", subtree))
        self.service._attach_child(
            self.tree.elements[parent_index], subtree, op.position
        )
        apply_insert(self.tree, plan)
        self.service._track_insert(plan.position, plan.size)
        self._shift_up(plan.position, plan.size)
        self._track_insert(plan.elements, plan.position)

    def _rebalanced_plan(self, parent_index: int, subtree, position):
        """Try to make room for an exhausted-gap insert with a *local*
        label rebalance instead of a full-forest relabel.

        On success the batch stays on the incremental path
        (``degraded`` is not set): only the rebalanced slice's labels
        moved, its surviving pre-batch nodes are queued for the
        flush's moved-node re-file, and the retried
        :func:`~repro.labeling.dynamic.plan_insert` is returned.
        Returns ``None`` when no ancestor region is wide enough (or,
        defensively, when the retry still cannot fit), sending the
        caller down the existing full-relabel path.
        """
        need = sum(1 for _ in subtree.iter())
        region = rebalance_for_insert(self.tree, parent_index, need, position)
        if region is None:
            return None
        lo, hi = region
        # Labels moved, so the incremental-checkpoint delta no longer
        # describes this tree (the moved slice is label-, not
        # structure-, dirty, which the tracker cannot express).
        self.service._ckpt_tracker = None
        moved = np.flatnonzero((self.orig_pos >= lo) & (self.orig_pos < hi))
        if moved.size:
            self.moved_old = np.union1d(self.moved_old, moved)
            self.touched += int(moved.size)
        self.rebalances += 1
        try:
            return plan_insert(self.tree, parent_index, subtree, position)
        except GapExhausted:
            return None

    def _oversized_insert(self, parent_index: int, op: InsertOp) -> None:
        """A subtree larger than any fresh gap: attach it and relabel
        the whole forest by walking the documents (rare degraded path)."""
        parent_element = self.tree.elements[parent_index]
        self._undo.append(("insert", op.subtree))
        self.service._attach_child(parent_element, op.subtree, op.position)
        self.service._ckpt_tracker = None  # whole-forest relabel
        labeled = label_forest(self.service.documents, spacing=self.service.spacing)
        self.tree.replace_contents(
            labeled.elements,
            labeled.start,
            labeled.end,
            labeled.level,
            labeled.parent_index,
            labeled.max_label,
        )
        position = self.tree.index_of(op.subtree)
        elements = list(op.subtree.iter())
        self._shift_up(position, len(elements))
        self._track_insert(elements, position)

    def _track_insert(self, elements: list[Element], position: int) -> None:
        record = _InsertRecord(
            elements=elements,
            positions=position + np.arange(len(elements), dtype=np.int64),
        )
        self.records.append(record)
        for local, element in enumerate(elements):
            self.inserted_slot[id(element)] = (record, local)
        self.touched += len(elements)
        self.inserts += 1
        self.nodes_inserted += len(elements)

    def _apply_delete(self, op: DeleteOp) -> None:
        index = self._resolve(op.node)
        sub = self.tree.subtree_slice(index)
        position, count = sub.start, sub.stop - sub.start

        in_range = np.flatnonzero(
            (self.orig_pos >= position) & (self.orig_pos < position + count)
        )
        if in_range.size:
            self.deleted_old.append(in_range)
            self.orig_pos[in_range] = -1
        self.orig_pos[self.orig_pos >= position + count] -= count
        for record in self.records:
            dead = (
                record.alive
                & (record.positions >= position)
                & (record.positions < position + count)
            )
            record.alive[dead] = False
            record.positions = np.where(
                record.positions >= position + count,
                record.positions - count,
                record.positions,
            )

        element = self.tree.elements[index]
        parent_element = element.parent
        self._undo.append(
            ("delete", element, parent_element, parent_element.children.index(element))
        )
        parent_element.children.remove(element)
        element.parent = None
        apply_delete(self.tree, index)
        self.service._track_delete(position, count)
        self.touched += count
        self.deletes += 1
        self.nodes_deleted += count

    # -- net-delta flush ---------------------------------------------------

    def _net_inserted(self) -> list[tuple[int, Element]]:
        out: list[tuple[int, Element]] = []
        for record in self.records:
            for local in np.flatnonzero(record.alive).tolist():
                out.append((int(record.positions[local]), record.elements[local]))
        return out

    def _flush_deltas(self) -> tuple[int, int]:
        """Apply the batch's net deltas to every maintained summary.

        Returns ``(predicates changed, coefficient kernels dropped)``.
        """
        service = self.service
        estimator = service.estimator
        grid = estimator.grid
        tree = self.tree

        inserted = self._net_inserted()
        ins_pos = np.asarray([p for p, _ in inserted], dtype=np.int64)
        del_old = (
            np.sort(np.concatenate(self.deleted_old))
            if self.deleted_old
            else np.empty(0, dtype=np.int64)
        )
        # Surviving nodes a mid-batch rebalance moved: every summary
        # counted them at their pre-batch cells and must re-file them at
        # their post-batch ones.  (Moved nodes deleted later in the
        # batch are already in ``del_old`` with pre-batch labels --
        # their rebalanced labels never reached any summary.)
        moved = self.moved_old
        if moved.size:
            moved = moved[self.orig_pos[moved] >= 0]
        moved_cur = self.orig_pos[moved]

        ins_cols = grid.buckets(tree.start[ins_pos])
        ins_rows = grid.buckets(tree.end[ins_pos])
        del_cols = grid.buckets(self.start0[del_old])
        del_rows = grid.buckets(self.end0[del_old])
        signs = np.concatenate(
            [
                np.ones(len(ins_pos), dtype=np.int64),
                -np.ones(len(del_old), dtype=np.int64),
            ]
        )

        if estimator._true_hist is not None:
            estimator._true_hist.apply_signed_delta(
                np.concatenate([ins_cols, del_cols]),
                np.concatenate([ins_rows, del_rows]),
                signs,
            )
            if moved.size:
                estimator._true_hist.apply_signed_delta(
                    np.concatenate(
                        [grid.buckets(tree.start[moved_cur]),
                         grid.buckets(self.start0[moved])]
                    ),
                    np.concatenate(
                        [grid.buckets(tree.end[moved_cur]),
                         grid.buckets(self.end0[moved])]
                    ),
                    np.concatenate(
                        [
                            np.ones(moved.size, dtype=np.int64),
                            -np.ones(moved.size, dtype=np.int64),
                        ]
                    ),
                )

        # Old membership must be captured before the catalog remaps it:
        # deleted nodes pair with the members they had when deleted.
        old_members: dict[Predicate, tuple[np.ndarray, bool]] = {
            predicate: (
                service.catalog.stats(predicate).node_indices,
                service.catalog.stats(predicate).no_overlap,
            )
            for predicate in service._numerators
        }

        changed = service.catalog.apply_batch(self.orig_pos, inserted)

        invalidated = 0
        for predicate, (added, removed_old) in changed.items():
            histogram = estimator._position_cache.get(predicate)
            if histogram is not None:
                histogram.apply_signed_delta(
                    np.concatenate(
                        [grid.buckets(tree.start[added]),
                         grid.buckets(self.start0[removed_old])]
                    ),
                    np.concatenate(
                        [grid.buckets(tree.end[added]),
                         grid.buckets(self.end0[removed_old])]
                    ),
                    np.concatenate(
                        [
                            np.ones(len(added), dtype=np.int64),
                            -np.ones(len(removed_old), dtype=np.int64),
                        ]
                    ),
                )
            invalidated += estimator.invalidate_derived(predicate)
            if predicate not in service._numerators:
                # Membership changed under a coverage the service does
                # not maintain: force a from-scratch rebuild on next use.
                estimator._coverage_cache.pop(predicate, None)

        if moved.size:
            # Re-file moved members in every cached per-predicate
            # summary.  Membership itself is untouched by a rebalance
            # (it depends on the element, not its labels), so the
            # post-batch catalog identifies the moved members directly.
            derived = (
                set(estimator._position_cache)
                | set(estimator._level_cache)
                | set(estimator._coefficient_cache)
            )
            for predicate in derived:
                members = service.catalog.stats(predicate).node_indices
                if members.size:
                    slots = np.minimum(
                        np.searchsorted(members, moved_cur), members.size - 1
                    )
                    hit = members[slots] == moved_cur
                else:
                    hit = np.zeros(moved.size, dtype=bool)
                if not hit.any():
                    continue
                sel_old = moved[hit]
                sel_cur = moved_cur[hit]
                histogram = estimator._position_cache.get(predicate)
                if histogram is not None:
                    histogram.apply_signed_delta(
                        np.concatenate(
                            [grid.buckets(tree.start[sel_cur]),
                             grid.buckets(self.start0[sel_old])]
                        ),
                        np.concatenate(
                            [grid.buckets(tree.end[sel_cur]),
                             grid.buckets(self.end0[sel_old])]
                        ),
                        np.concatenate(
                            [
                                np.ones(sel_cur.size, dtype=np.int64),
                                -np.ones(sel_old.size, dtype=np.int64),
                            ]
                        ),
                    )
                invalidated += estimator.invalidate_derived(predicate)
            # Coverages the service does not maintain numerators for
            # cannot be delta-patched; moved cells make them stale.
            for predicate in list(estimator._coverage_cache):
                if predicate not in service._numerators:
                    estimator._coverage_cache.pop(predicate, None)

        for predicate in list(service._numerators):
            stats = service.catalog.stats(predicate)
            if not stats.effective_no_overlap:
                del service._numerators[predicate]
                estimator._coverage_cache.pop(predicate, None)
                continue
            members_old, flag_old = old_members[predicate]
            # Moved nodes re-file on both sides of the patch: their
            # pre-batch pairs leave with the pre-batch table, their
            # post-batch pairs arrive with the current one.  A moved
            # *member*'s covered nodes all sit inside the rebalanced
            # slice (they are its descendants), so keying the pass on
            # moved covered-nodes captures every pair either side of
            # which moved.
            lost_nodes = (
                np.concatenate([del_old, moved]) if moved.size else del_old
            )
            gained_nodes = (
                np.concatenate([ins_pos, moved_cur]) if moved.size else ins_pos
            )
            lost_codes, lost_counts = _covering_pairs(
                self.start0, self.end0, self.parent0,
                lost_nodes, members_old, flag_old, grid,
            )
            gained_codes, gained_counts = _covering_pairs(
                tree.start, tree.end, tree.parent_index,
                gained_nodes, stats.node_indices, stats.no_overlap, grid,
            )
            service._numerators[predicate] = service._numerators[predicate].patch(
                gained_codes, gained_counts, lost_codes, lost_counts,
                owner=predicate.name,
            )
            service._install_coverage(predicate)
        return len(changed), invalidated

    # -- bookkeeping -------------------------------------------------------

    def _count_into_stats(self) -> None:
        stats = self.service.stats
        stats.batches += 1
        stats.rebalances += self.rebalances
        stats.inserts += self.inserts
        stats.deletes += self.deletes
        stats.nodes_inserted += self.nodes_inserted
        stats.nodes_deleted += self.nodes_deleted

    def _result(self, rebuilt: bool, changed: int, invalidated: int) -> BatchResult:
        return BatchResult(
            ops=self.inserts + self.deletes,
            inserts=self.inserts,
            deletes=self.deletes,
            nodes_inserted=self.nodes_inserted,
            nodes_deleted=self.nodes_deleted,
            rebuilt=rebuilt,
            predicates_changed=changed,
            coefficients_invalidated=invalidated,
            dirty_fraction=self.service.dirty_fraction,
        )


def _covering_pairs(
    starts: np.ndarray,
    ends: np.ndarray,
    parents: np.ndarray,
    nodes: np.ndarray,
    members: np.ndarray,
    no_overlap: bool,
    grid: GridSpec,
) -> tuple[np.ndarray, np.ndarray]:
    """Count ``(cell(node), cell(covering member))`` pairs for a node
    subset against one consistent label table.

    Returns sorted packed pair codes with counts (the
    :class:`~repro.histograms.coverage.CoverageNumerators` layout).
    With the no-overlap property (in the data), each node's unique
    covering member comes from the shared
    :func:`~repro.histograms.parallel.covering_members` kernel;
    otherwise the nearest member ancestor comes from the vectorized
    parent-chain walk (the semantics the per-update maintenance path
    uses for schema-asserted no-overlap predicates).
    """
    from repro.histograms.parallel import covering_members, nearest_member_ancestors

    empty = np.empty(0, dtype=np.int64)
    if nodes.size == 0 or members.size == 0:
        return empty, empty
    g = grid.size
    if no_overlap:
        node_idx, member_idx = covering_members(starts, ends, members, nodes)
    else:
        node_idx, member_idx = nearest_member_ancestors(parents, members, nodes)
    if node_idx.size == 0:
        return empty, empty

    keys = (
        (grid.buckets(starts[node_idx]) * g + grid.buckets(ends[node_idx]))
        * (g * g)
        + grid.buckets(starts[member_idx]) * g
        + grid.buckets(ends[member_idx])
    )
    return np.unique(keys, return_counts=True)
