"""Synchronous Python client for the estimation server.

:class:`ServiceClient` speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol` over one TCP connection.  The raw
transport is :meth:`ServiceClient.request` (request dict in, response
dict out, never raises on an ``ok: false`` reply); the typed
convenience methods raise :class:`ServiceError` on error replies, so
application code can write::

    with ServiceClient("127.0.0.1", 9630) as db:
        db.insert("article", "<note><author>X</author></note>")
        print(db.estimate("//article//author"))
        with db.snapshot() as snap:          # pinned epoch reads
            before = snap.estimate("//article//author")

The client is thread-safe by serialisation: one lock covers each
request/response round-trip.  For pipelining, open one client per
thread -- connections are cheap and the server coalesces concurrent
writers' ops into shared admission batches regardless of which
connection they arrive on.

Resilience
----------
``timeout`` applies to the whole round-trip -- connect *and* each
per-request receive -- and a stalled server surfaces as a typed
:class:`ClientTimeout` rather than a raw ``socket.timeout``.  With
``retries > 0`` the client retries transport failures (connect
refusal, timeout, disconnect -- including a *mid-frame* disconnect,
where the line arrived without its newline) and ``overloaded``
rejections, reconnecting and backing off exponentially with seeded
jitter between attempts.  Every mutation carries a client-generated
**idempotency key** (``"idem"``), so a retry of an acked-but-lost op
replays the server's recorded reply instead of applying twice --
at-most-once effects with at-least-once delivery.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Iterable, Optional, Sequence

import itertools
import threading

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_frame,
    format_error,
)


class ServiceError(RuntimeError):
    """The server answered ``ok: false``; ``code`` is the structured
    error code (``None`` for plain-string errors)."""

    def __init__(self, error) -> None:
        super().__init__(format_error(error))
        self.code: Optional[str] = (
            error.get("code") if isinstance(error, dict) else None
        )
        self.retryable: bool = bool(
            error.get("retryable") if isinstance(error, dict) else False
        )


class ClientTimeout(TimeoutError):
    """The server did not answer within the client's ``timeout``."""


class ClientSnapshot:
    """A server-side pinned snapshot; estimates against it read the
    epoch it pinned no matter what writers do afterwards."""

    def __init__(self, client: "ServiceClient", sid: int, epoch: int) -> None:
        self._client = client
        self.snapshot_id = sid
        self.epoch = epoch
        self._released = False

    def estimate(self, query: str) -> float:
        return self._client.estimate(query, snapshot=self.snapshot_id)

    def estimate_many(self, queries: Sequence[str]) -> list[float]:
        return self._client.estimate_many(queries, snapshot=self.snapshot_id)

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._client.release(self.snapshot_id)

    def __enter__(self) -> "ClientSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ServiceClient:
    """One TCP connection to an :class:`~repro.service.server.EstimationServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 60.0,
        retries: int = 0,
        backoff_ms: float = 50.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_ms < 0:
            raise ValueError("backoff_ms must be >= 0")
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = retries
        self.backoff_ms = backoff_ms
        self._rng = random.Random(retry_seed)
        self._lock = threading.Lock()
        self._closed = False
        self._sock: Optional[socket.socket] = None
        self._file = None
        # Idempotency keys: unique per client instance and per mutation,
        # stable across that mutation's retries.
        self._idem_prefix = uuid.uuid4().hex
        self._idem_counter = itertools.count(1)
        try:
            self._connect_locked()
        except socket.timeout as exc:
            raise ClientTimeout(f"connect timed out: {exc}") from exc

    # -- transport ---------------------------------------------------------

    def _connect_locked(self) -> None:
        """(Re-)establish the connection.  Caller holds no round-trip in
        flight (constructor, or the retry loop under ``_lock``)."""
        self._teardown_socket()
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        sock.settimeout(self._timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def _teardown_socket(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def next_idempotency_key(self) -> str:
        return f"{self._idem_prefix}-{next(self._idem_counter)}"

    def request(self, request: dict) -> dict:
        """One request/response round-trip; returns the raw response.

        Raises :class:`ConnectionError` on disconnect (including a
        mid-frame one), :class:`ClientTimeout` when the server stalls
        past ``timeout``.  No retrying at this layer -- that is
        :meth:`_call`'s job, where idempotency keys make it safe.
        """
        with self._lock:
            return self._request_locked(request)

    def _request_locked(self, request: dict) -> dict:
        import json

        if self._closed:
            raise ConnectionError("client is closed")
        if self._sock is None:
            try:
                self._connect_locked()
            except socket.timeout as exc:
                raise ClientTimeout(f"connect timed out: {exc}") from exc
            except ConnectionError:
                raise
            except OSError as exc:
                raise ConnectionError(f"reconnect failed: {exc}") from exc
        try:
            self._sock.sendall(encode_frame(request))
            raw = self._file.readline(MAX_LINE_BYTES + 1)
        except socket.timeout as exc:
            # The connection state is ambiguous (a late reply would
            # desynchronise the stream): drop it, reconnect lazily.
            self._teardown_socket()
            raise ClientTimeout(
                f"no response within {self._timeout}s"
            ) from exc
        except OSError as exc:
            self._teardown_socket()
            raise ConnectionError(f"connection failed mid-request: {exc}") from exc
        if not raw:
            self._teardown_socket()
            raise ConnectionError("server closed the connection")
        if not raw.endswith(b"\n"):
            # A frame is one newline-terminated line; bytes without the
            # terminator mean the server vanished mid-frame.
            self._teardown_socket()
            raise ConnectionError("server disconnected mid-frame")
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError("oversized response frame")
        return json.loads(raw.decode("utf-8"))

    def request_retrying(self, request: dict) -> dict:
        """:meth:`request` plus the bounded retry/backoff of the typed
        methods; error replies come back as response dicts.  A mutation
        without an ``"idem"`` key gets one stamped first (when retries
        are enabled), so the retries stay exactly-once."""
        if (
            self.retries > 0
            and request.get("op") in ("insert", "delete", "batch")
            and "idem" not in request
        ):
            request = {**request, "idem": self.next_idempotency_key()}
        attempt = 0
        while True:
            try:
                with self._lock:
                    response = self._request_locked(request)
            except (ConnectionError, ClientTimeout):
                if attempt >= self.retries or self._closed:
                    raise
                self._backoff(attempt)
                attempt += 1
                continue
            if not response.get("ok", False):
                error = response.get("error")
                if (
                    attempt < self.retries
                    and isinstance(error, dict)
                    and error.get("retryable")
                ):
                    self._backoff(attempt, hint=error.get("retry_after_ms"))
                    attempt += 1
                    continue
            return response

    def _call(self, request: dict) -> dict:
        """Typed round-trip with bounded retry.

        Retries transport failures and retryable coded errors
        (``overloaded``) up to ``retries`` times, reconnecting first
        and sleeping an exponentially growing, jittered backoff between
        attempts.  The *same* request object -- same idempotency key --
        is resent, so mutations cannot double-apply.
        """
        response = self.request_retrying(request)
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def _backoff(self, attempt: int, hint: Optional[float] = None) -> None:
        base = self.backoff_ms / 1000.0
        if hint is not None:
            base = max(base, float(hint) / 1000.0)
        delay = base * (2 ** attempt) * (0.5 + self._rng.random() / 2)
        if delay > 0:
            time.sleep(delay)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_socket()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reads -------------------------------------------------------------

    def ping(self) -> bool:
        return self._call({"op": "ping"})["ok"]

    def health(self) -> dict:
        return self._call({"op": "health"})

    def estimate(
        self,
        query: str,
        *,
        snapshot: Optional[int] = None,
        strong: bool = False,
    ) -> float:
        request: dict[str, Any] = {"op": "estimate", "query": query}
        if snapshot is not None:
            request["snapshot"] = snapshot
        elif strong:
            request["strong"] = True
        return float(self._call(request)["value"])

    def estimate_many(
        self,
        queries: Sequence[str],
        *,
        snapshot: Optional[int] = None,
        strong: bool = False,
    ) -> list[float]:
        request: dict[str, Any] = {"op": "estimate", "queries": list(queries)}
        if snapshot is not None:
            request["snapshot"] = snapshot
        elif strong:
            request["strong"] = True
        return [float(v) for v in self._call(request)["values"]]

    def exact(self, query: str) -> int:
        return int(self._call({"op": "exact", "query": query})["value"])

    def execute(self, query: str) -> dict:
        return self._call({"op": "execute", "query": query})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def snapshot(self) -> ClientSnapshot:
        response = self._call({"op": "snapshot"})
        return ClientSnapshot(self, int(response["snapshot"]), int(response["epoch"]))

    def release(self, snapshot_id: int) -> None:
        self._call({"op": "release", "snapshot": snapshot_id})

    # -- writes ------------------------------------------------------------

    def insert(
        self,
        parent_tag: str,
        xml: str,
        *,
        ordinal: int = 1,
        position: Optional[int] = None,
    ) -> dict:
        request: dict[str, Any] = {
            "op": "insert",
            "parent": {"tag": parent_tag, "ordinal": ordinal},
            "xml": xml,
            "idem": self.next_idempotency_key(),
        }
        if position is not None:
            request["position"] = position
        return self._call(request)

    def delete(self, tag: str, *, ordinal: int = 1) -> dict:
        return self._call(
            {
                "op": "delete",
                "node": {"tag": tag, "ordinal": ordinal},
                "idem": self.next_idempotency_key(),
            }
        )

    def batch(self, ops: Iterable[dict]) -> dict:
        """All-or-nothing batch: every op applies in one admission unit
        (one WAL record, one fsync) or none do."""
        return self._call(
            {
                "op": "batch",
                "ops": list(ops),
                "idem": self.next_idempotency_key(),
            }
        )

    def save(self, path: str) -> dict:
        return self._call({"op": "save", "path": str(path)})

    # -- control -----------------------------------------------------------

    def resume(self) -> dict:
        """Operator resume after storage-fault degradation."""
        return self._call({"op": "resume"})

    def shutdown(self) -> dict:
        return self._call({"op": "shutdown"})


def _address(spec) -> tuple[str, int]:
    """``(host, port)``, ``"host:port"`` or ``"port"`` -> ``(host, port)``."""
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    text = str(spec)
    host, _, port = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"malformed replica address {spec!r}") from None


class _Node:
    """One fleet member: lazy connection + short-lived failure memory."""

    def __init__(self, spec, timeout, retries, cooldown) -> None:
        self.host, self.port = _address(spec)
        self._timeout = timeout
        self._retries = retries
        self._cooldown = cooldown
        self._client: Optional[ServiceClient] = None
        self._down_until = 0.0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def available(self) -> bool:
        return time.monotonic() >= self._down_until

    def client(self) -> ServiceClient:
        if self._client is None:
            self._client = ServiceClient(
                self.host, self.port,
                timeout=self._timeout, retries=self._retries,
            )
        return self._client

    def fail(self) -> None:
        """Bench the node for a cooldown after a transport failure."""
        self._down_until = time.monotonic() + self._cooldown
        if self._client is not None:
            self._client.close()
            self._client = None

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None


class ReplicaSet:
    """A fleet-aware client: primary for writes, replicas for reads.

    Mutations (``insert``/``delete``/``batch``) and strong reads always
    go to the primary.  Weak reads (``estimate``/``estimate_many``/
    ``execute``/``exact``) round-robin across the replicas, skipping
    nodes that recently failed (they are retried after ``cooldown``
    seconds) and falling back to the primary when every replica is
    down.  Replica reads are *eventually consistent*: they trail the
    primary by replication lag.

    ``read_your_writes=True`` upgrades replica reads to
    read-your-writes: after a mutation, the next read first learns the
    primary's ``last_committed_lsn`` (one health round-trip) and waits
    -- bounded by ``wait_timeout`` -- for the chosen replica to report
    having applied it, falling back to the primary on timeout.  The
    same machinery is public as :meth:`wait_for_lsn`.
    """

    def __init__(
        self,
        primary,
        replicas: Sequence = (),
        *,
        timeout: Optional[float] = 60.0,
        retries: int = 0,
        cooldown: float = 1.0,
        read_your_writes: bool = False,
        wait_timeout: float = 10.0,
    ) -> None:
        self._primary = _Node(primary, timeout, retries, cooldown)
        self._replicas = [
            _Node(spec, timeout, retries, cooldown) for spec in replicas
        ]
        self.read_your_writes = read_your_writes
        self.wait_timeout = wait_timeout
        self._rr = itertools.count()
        self._lock = threading.Lock()
        self._rw_dirty = False
        self._rw_lsn = 0

    # -- routing -----------------------------------------------------------

    @property
    def primary(self) -> ServiceClient:
        return self._primary.client()

    def replica_clients(self) -> list[ServiceClient]:
        """Connected clients for every currently-available replica."""
        return [node.client() for node in self._replicas if node.available()]

    def _read_target_lsn(self) -> int:
        """The LSN a read-your-writes read must observe (0 = any)."""
        if not self.read_your_writes:
            return 0
        with self._lock:
            dirty = self._rw_dirty
            # Claim the flag *before* the health round-trip: a mutation
            # landing on another thread while the request is in flight
            # re-dirties and is observed by the next read, instead of
            # being wiped by a clear-after-fetch.
            self._rw_dirty = False
        if dirty:
            try:
                lsn = int(self.primary.health().get("last_committed_lsn", 0))
            except BaseException:
                with self._lock:
                    self._rw_dirty = True
                raise
            with self._lock:
                self._rw_lsn = max(self._rw_lsn, lsn)
        with self._lock:
            return self._rw_lsn

    def _on_replica(self, fn):
        """Run a read on some live replica, primary as the fallback."""
        target_lsn = self._read_target_lsn()
        n = len(self._replicas)
        if n:
            start = next(self._rr)
            for step in range(n):
                node = self._replicas[(start + step) % n]
                if not node.available():
                    continue
                try:
                    client = node.client()
                    if target_lsn and not self._wait_on(
                        client, target_lsn, self.wait_timeout
                    ):
                        continue  # lagging past the bound: try elsewhere
                    return fn(client)
                except (ConnectionError, ClientTimeout, OSError):
                    node.fail()
        return fn(self.primary)

    def _mutate(self, fn):
        response = fn(self.primary)
        if self.read_your_writes:
            with self._lock:
                self._rw_dirty = True
        return response

    # -- waiting -----------------------------------------------------------

    @staticmethod
    def _wait_on(client: ServiceClient, lsn: int, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        delay = 0.005
        while True:
            health = client.health()
            if int(health.get("last_committed_lsn", 0)) >= lsn:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(delay)
            delay = min(delay * 2, 0.25)

    def wait_for_lsn(self, lsn: int, *, timeout: Optional[float] = None) -> bool:
        """Block until every available replica has applied ``lsn``."""
        timeout = self.wait_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        for node in self._replicas:
            if not node.available():
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if not self._wait_on(node.client(), lsn, remaining):
                    return False
            except (ConnectionError, ClientTimeout, OSError):
                node.fail()
        return True

    # -- reads (replica-fanned) --------------------------------------------

    def estimate(self, query: str) -> float:
        return self._on_replica(lambda c: c.estimate(query))

    def estimate_many(self, queries: Sequence[str]) -> list[float]:
        return self._on_replica(lambda c: c.estimate_many(queries))

    def exact(self, query: str) -> int:
        return self._on_replica(lambda c: c.exact(query))

    def execute(self, query: str) -> dict:
        return self._on_replica(lambda c: c.execute(query))

    def health(self) -> dict:
        """Primary health plus each replica's, keyed by address."""
        out = self.primary.health()
        out["replicas"] = {}
        for node in self._replicas:
            try:
                out["replicas"][node.address] = node.client().health()
            except (ConnectionError, ClientTimeout, OSError, ServiceError) as exc:
                node.fail()
                out["replicas"][node.address] = {"ok": False, "error": str(exc)}
        return out

    # -- writes (primary-routed) -------------------------------------------

    def insert(self, parent_tag: str, xml: str, **kwargs) -> dict:
        return self._mutate(lambda c: c.insert(parent_tag, xml, **kwargs))

    def delete(self, tag: str, **kwargs) -> dict:
        return self._mutate(lambda c: c.delete(tag, **kwargs))

    def batch(self, ops: Iterable[dict]) -> dict:
        return self._mutate(lambda c: c.batch(list(ops)))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._primary.close()
        for node in self._replicas:
            node.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "ClientSnapshot",
    "ClientTimeout",
    "ReplicaSet",
    "ServiceClient",
    "ServiceError",
]
