"""Synchronous Python client for the estimation server.

:class:`ServiceClient` speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol` over one TCP connection.  The raw
transport is :meth:`ServiceClient.request` (request dict in, response
dict out, never raises on an ``ok: false`` reply); the typed
convenience methods raise :class:`ServiceError` on error replies, so
application code can write::

    with ServiceClient("127.0.0.1", 9630) as db:
        db.insert("article", "<note><author>X</author></note>")
        print(db.estimate("//article//author"))
        with db.snapshot() as snap:          # pinned epoch reads
            before = snap.estimate("//article//author")

The client is thread-safe by serialisation: one lock covers each
request/response round-trip.  For pipelining, open one client per
thread -- connections are cheap and the server coalesces concurrent
writers' ops into shared admission batches regardless of which
connection they arrive on.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Optional, Sequence

import threading

from repro.service.protocol import MAX_LINE_BYTES, ProtocolError, encode_frame


class ServiceError(RuntimeError):
    """The server answered ``ok: false``; the message is its ``error``."""


class ClientSnapshot:
    """A server-side pinned snapshot; estimates against it read the
    epoch it pinned no matter what writers do afterwards."""

    def __init__(self, client: "ServiceClient", sid: int, epoch: int) -> None:
        self._client = client
        self.snapshot_id = sid
        self.epoch = epoch
        self._released = False

    def estimate(self, query: str) -> float:
        return self._client.estimate(query, snapshot=self.snapshot_id)

    def estimate_many(self, queries: Sequence[str]) -> list[float]:
        return self._client.estimate_many(queries, snapshot=self.snapshot_id)

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._client.release(self.snapshot_id)

    def __enter__(self) -> "ClientSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ServiceClient:
    """One TCP connection to an :class:`~repro.service.server.EstimationServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: Optional[float] = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._closed = False

    # -- transport ---------------------------------------------------------

    def request(self, request: dict) -> dict:
        """One request/response round-trip; returns the raw response."""
        import json

        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            self._sock.sendall(encode_frame(request))
            raw = self._file.readline(MAX_LINE_BYTES + 1)
        if not raw:
            raise ConnectionError("server closed the connection")
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError("oversized response frame")
        return json.loads(raw.decode("utf-8"))

    def _call(self, request: dict) -> dict:
        response = self.request(request)
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reads -------------------------------------------------------------

    def ping(self) -> bool:
        return self._call({"op": "ping"})["ok"]

    def estimate(
        self,
        query: str,
        *,
        snapshot: Optional[int] = None,
        strong: bool = False,
    ) -> float:
        request: dict[str, Any] = {"op": "estimate", "query": query}
        if snapshot is not None:
            request["snapshot"] = snapshot
        elif strong:
            request["strong"] = True
        return float(self._call(request)["value"])

    def estimate_many(
        self,
        queries: Sequence[str],
        *,
        snapshot: Optional[int] = None,
        strong: bool = False,
    ) -> list[float]:
        request: dict[str, Any] = {"op": "estimate", "queries": list(queries)}
        if snapshot is not None:
            request["snapshot"] = snapshot
        elif strong:
            request["strong"] = True
        return [float(v) for v in self._call(request)["values"]]

    def exact(self, query: str) -> int:
        return int(self._call({"op": "exact", "query": query})["value"])

    def execute(self, query: str) -> dict:
        return self._call({"op": "execute", "query": query})

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def snapshot(self) -> ClientSnapshot:
        response = self._call({"op": "snapshot"})
        return ClientSnapshot(self, int(response["snapshot"]), int(response["epoch"]))

    def release(self, snapshot_id: int) -> None:
        self._call({"op": "release", "snapshot": snapshot_id})

    # -- writes ------------------------------------------------------------

    def insert(
        self,
        parent_tag: str,
        xml: str,
        *,
        ordinal: int = 1,
        position: Optional[int] = None,
    ) -> dict:
        request: dict[str, Any] = {
            "op": "insert",
            "parent": {"tag": parent_tag, "ordinal": ordinal},
            "xml": xml,
        }
        if position is not None:
            request["position"] = position
        return self._call(request)

    def delete(self, tag: str, *, ordinal: int = 1) -> dict:
        return self._call(
            {"op": "delete", "node": {"tag": tag, "ordinal": ordinal}}
        )

    def batch(self, ops: Iterable[dict]) -> dict:
        """All-or-nothing batch: every op applies in one admission unit
        (one WAL record, one fsync) or none do."""
        return self._call({"op": "batch", "ops": list(ops)})

    def save(self, path: str) -> dict:
        return self._call({"op": "save", "path": str(path)})

    # -- control -----------------------------------------------------------

    def shutdown(self) -> dict:
        return self._call({"op": "shutdown"})


__all__ = ["ClientSnapshot", "ServiceClient", "ServiceError"]
