"""Interval (region) encoding of XML trees.

Section 3.1 of the paper associates a numeric ``start`` and ``end`` label
with every node such that a descendant's interval is strictly contained
in its ancestors' intervals.  This package computes those labels and
exposes them as an immutable :class:`~repro.labeling.interval.LabeledTree`
table that the histogram and estimation layers consume.
"""

from repro.labeling.dynamic import GapExhausted, InsertPlan, plan_insert
from repro.labeling.interval import (
    IntervalLabel,
    LabeledTree,
    label_document,
    label_forest,
    relabel_preorder,
)
from repro.labeling.regions import Region, classify_pair, region_of

__all__ = [
    "GapExhausted",
    "InsertPlan",
    "IntervalLabel",
    "LabeledTree",
    "Region",
    "classify_pair",
    "label_document",
    "label_forest",
    "relabel_preorder",
    "plan_insert",
    "region_of",
]
