"""Start/end interval labeling of node-labeled trees.

The numbering scheme follows the paper (Section 3.1):

* all documents in the database are merged into a single mega-tree under
  a dummy root;
* ``start`` labels are assigned by a pre-order numbering;
* the ``end`` label of a node is at least as large as its own start label
  and larger than the end label of any of its descendants.

We realise this with a single global counter that increments on element
entry (producing ``start``) and on element exit (producing ``end``).
That yields labels with three useful properties the rest of the library
relies on:

1. ``start < end`` strictly for every node;
2. ``u`` is a proper ancestor of ``v`` iff
   ``u.start < v.start and v.end < u.end``;
3. any two intervals are either disjoint or strictly nested (Lemma 1).

The result is a :class:`LabeledTree`: flat, numpy-backed arrays indexed by
pre-order node id.  Keeping labels out of the tree nodes keeps the data
model clean and makes bulk histogram construction a vectorised operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.xmltree.tree import Document, Element


@dataclass(frozen=True)
class IntervalLabel:
    """The (start, end, level) label of one node."""

    start: int
    end: int
    level: int

    def contains(self, other: "IntervalLabel") -> bool:
        """True if ``other`` is strictly inside this interval."""
        return self.start < other.start and other.end < self.end

    def disjoint(self, other: "IntervalLabel") -> bool:
        """True if the two intervals do not intersect."""
        return self.end < other.start or other.end < self.start


class LabeledTree:
    """Interval labels for every element of a database (mega-)tree.

    Attributes
    ----------
    elements:
        The element nodes in pre-order (mega-tree order across documents).
    start, end, level:
        Numpy int64 arrays, aligned with ``elements``.
    parent_index:
        For each node, the pre-order index of its parent element, or -1
        for document roots (children of the implicit dummy root).
    max_label:
        The largest label assigned (the dummy root's end label); the
        histogram grid spans ``[0, max_label]``.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        start: np.ndarray,
        end: np.ndarray,
        level: np.ndarray,
        parent_index: np.ndarray,
        max_label: int,
    ) -> None:
        self.elements = list(elements)
        self.start = start
        self.end = end
        self.level = level
        self.parent_index = parent_index
        self.max_label = max_label
        self._index_of: Optional[dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.elements)

    @classmethod
    def shared_view(cls, source: "LabeledTree") -> "LabeledTree":
        """A frozen view sharing ``source``'s containers by reference.

        O(1): no array or list is copied.  Sound because every
        maintenance path *replaces* the label arrays and the element
        list rather than writing into them (see
        :func:`repro.labeling.dynamic.apply_insert` /
        :func:`~repro.labeling.dynamic.apply_delete` and
        :meth:`replace_contents`), so the view stays a complete
        pre-mutation state forever.  This is what service snapshots pin.
        """
        view = cls.__new__(cls)
        view.elements = source.elements
        view.start = source.start
        view.end = source.end
        view.level = source.level
        view.parent_index = source.parent_index
        view.max_label = source.max_label
        view._index_of = None
        return view

    def replace_contents(
        self,
        elements: Sequence[Element],
        start: np.ndarray,
        end: np.ndarray,
        level: np.ndarray,
        parent_index: np.ndarray,
        max_label: int,
    ) -> None:
        """Wholesale in-place replacement of the label table.

        Keeps the :class:`LabeledTree` object identity, so long-lived
        views of the database (catalogs, executors, estimation services)
        survive a full relabeling without re-wiring their references.
        """
        self.elements = list(elements)
        self.start = start
        self.end = end
        self.level = level
        self.parent_index = parent_index
        self.max_label = max_label
        self._index_of = None

    def invalidate_element_index(self) -> None:
        """Drop the element-identity index after a structural mutation."""
        self._index_of = None

    def label_of(self, index: int) -> IntervalLabel:
        """The :class:`IntervalLabel` of the node at pre-order ``index``."""
        return IntervalLabel(
            int(self.start[index]), int(self.end[index]), int(self.level[index])
        )

    def index_of(self, element: Element) -> int:
        """Pre-order index of an element (O(1) after first call)."""
        if self._index_of is None:
            self._index_of = {id(e): i for i, e in enumerate(self.elements)}
        return self._index_of[id(element)]

    def is_ancestor(self, u: int, v: int) -> bool:
        """True if node ``u`` is a proper ancestor of node ``v``."""
        return bool(self.start[u] < self.start[v] and self.end[v] < self.end[u])

    def iter_labels(self) -> Iterator[IntervalLabel]:
        """Yield labels in pre-order."""
        for i in range(len(self.elements)):
            yield self.label_of(i)

    def subtree_slice(self, index: int) -> slice:
        """Pre-order slice covering node ``index`` and all its descendants.

        Pre-order contiguity: the descendants of a node occupy the
        positions immediately after it, up to the first node whose start
        exceeds the node's end.
        """
        hi = int(np.searchsorted(self.start, self.end[index]))
        return slice(index, hi)

    def validate(self) -> None:
        """Check the structural invariants; raise AssertionError if broken.

        Used by tests and by the property-based suite -- not on hot paths.
        """
        assert np.all(self.start < self.end), "start must be < end"
        order = np.argsort(self.start)
        assert np.array_equal(order, np.arange(len(self))), "pre-order start labels"
        for i in range(len(self)):
            p = int(self.parent_index[i])
            if p >= 0:
                assert self.start[p] < self.start[i] < self.end[i] < self.end[p]


def relabel_preorder(tree: LabeledTree, spacing: int = 1) -> None:
    """Reassign all labels of ``tree`` in place, without walking elements.

    The pre-order sequence of a :class:`LabeledTree` is exactly its
    array order, so the enter/exit counter of :func:`label_forest` can
    be replayed arithmetically: when node ``i`` (0-based, level ``l``,
    subtree size ``s``) is entered, ``i`` nodes have been entered before
    it and ``i - (l - 1)`` of them already exited, so its start label is
    ``spacing * (2i - l + 2)`` and its end label follows ``2s - 1``
    events later.  The result is bit-identical to
    ``label_forest(documents, spacing)`` over the same forest, at the
    cost of three vectorised array expressions instead of a Python DFS
    -- the relabeling path of the online service's rebuild.

    ``level``, ``parent_index``, and ``elements`` are untouched (the
    structure does not change, only the numbering), and ``start`` /
    ``end`` are replaced with new arrays so snapshots holding the old
    arrays keep a consistent pre-relabel view.
    """
    if spacing < 1:
        raise ValueError(f"spacing must be >= 1, got {spacing}")
    n = len(tree)
    if n == 0:
        tree.start = np.empty(0, dtype=np.int64)
        tree.end = np.empty(0, dtype=np.int64)
        tree.max_label = spacing
        return
    idx = np.arange(n, dtype=np.int64)
    sizes = np.searchsorted(tree.start, tree.end) - idx
    start = spacing * (2 * idx - tree.level + 2)
    tree.end = start + spacing * (2 * sizes - 1)
    tree.start = start
    tree.max_label = spacing * (2 * n + 1)


def label_document(document: Document, spacing: int = 1) -> LabeledTree:
    """Label a single document; see :func:`label_forest`."""
    return label_forest([document], spacing=spacing)


def label_forest(documents: Sequence[Document], spacing: int = 1) -> LabeledTree:
    """Merge ``documents`` under a dummy root and label every element.

    The dummy root itself is not materialised: it would have
    ``start = 0`` and ``end = max_label``, and no predicate ever selects
    it.  Labels of real nodes start at 1.

    ``spacing`` stretches the numbering: consecutive labels are assigned
    ``spacing`` apart, leaving ``spacing - 1`` unused integer positions
    between any two used labels.  Those gaps are what
    :mod:`repro.labeling.dynamic` allocates from when subtrees are
    inserted in place, so an online service can absorb updates without
    relabeling the whole database.  ``spacing=1`` (the default) is the
    paper's dense numbering.
    """
    if spacing < 1:
        raise ValueError(f"spacing must be >= 1, got {spacing}")
    elements: list[Element] = []
    starts: list[int] = []
    ends: list[int] = []
    levels: list[int] = []
    parents: list[int] = []

    counter = spacing  # 0 is reserved for the dummy root's start position
    # Iterative DFS; entry frames hold (element, parent_index, level),
    # exit frames (None, own_slot, _) -- the slot rides on the frame, so
    # no per-node lookup table is needed to patch end labels.
    stack: list[tuple[Optional[Element], int, int]] = []
    for document in reversed(documents):
        roots = [c for c in document.children if isinstance(c, Element)]
        for root in reversed(roots):
            stack.append((root, -1, 1))

    while stack:
        node, index, level = stack.pop()
        if node is None:  # exit frame: index is this node's slot
            ends[index] = counter
            counter += spacing
            continue
        slot = len(elements)
        elements.append(node)
        starts.append(counter)
        ends.append(-1)  # patched on exit
        levels.append(level)
        parents.append(index)
        counter += spacing
        stack.append((None, slot, level))
        for child in reversed(list(node.child_elements())):
            stack.append((child, slot, level + 1))

    max_label = counter  # dummy root's end
    return LabeledTree(
        elements,
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
        np.asarray(levels, dtype=np.int64),
        np.asarray(parents, dtype=np.int64),
        max_label,
    )
