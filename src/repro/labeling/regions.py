"""Region geometry of the (start, end) plane.

The pH-join estimation formulae (paper Figs. 4-6) partition the plane
around a grid cell ``A = (i, j)`` into nine regions R0..R8.  This module
names those regions and classifies cells and node pairs, both for the
estimators and for tests that check the estimators against first
principles.

Region layout relative to the anchor cell ``A`` at column ``i`` (start
bucket) and row ``j`` (end bucket), with start on the X axis and end on
the Y axis (j >= i always, since start <= end):

* ``SELF``       -- the anchor cell itself (R0 / A).
* ``INSIDE``     -- start bucket in (i, j], end bucket < j, strictly
  inside: guaranteed descendants of every point of A (regions B/E
  interior of the paper's Fig. 5).
* ``SAME_COL_BELOW`` -- cells (i, l) with i < l < j: descendants of all
  points of A by the forbidden-region argument (region E boundary).
* ``SAME_ROW_RIGHT`` -- cells (k, j) with i < k < j: likewise guaranteed
  descendants (region C boundary).
* ``DIAG_LOW``   -- the diagonal cell (i, i): half its points are
  descendants on average (region F).
* ``DIAG_HIGH``  -- the diagonal cell (j, j): half descendants on
  average (region D).
* ``OUTSIDE_ANC`` -- cells (m, n) with m < i and n > j: guaranteed
  ancestors of every point of A (region G for descendant-based
  estimation).
* ``SAME_COL_ABOVE`` -- cells (i, n), n > j: guaranteed ancestors
  (region F of the descendant-based formula).
* ``SAME_ROW_LEFT``  -- cells (m, j), m < i: guaranteed ancestors
  (region H).
* ``UNRELATED``  -- everything else (R4/R8): no structural relation.
"""

from __future__ import annotations

from enum import Enum, auto

from repro.labeling.interval import IntervalLabel


class Region(Enum):
    """Position of a grid cell relative to an anchor cell."""

    SELF = auto()
    INSIDE = auto()
    SAME_COL_BELOW = auto()
    SAME_ROW_RIGHT = auto()
    DIAG_LOW = auto()
    DIAG_HIGH = auto()
    OUTSIDE_ANC = auto()
    SAME_COL_ABOVE = auto()
    SAME_ROW_LEFT = auto()
    UNRELATED = auto()


def region_of(anchor_i: int, anchor_j: int, cell_i: int, cell_j: int) -> Region:
    """Classify cell ``(cell_i, cell_j)`` relative to ``(anchor_i, anchor_j)``.

    Both cells must be in the populated upper triangle (``j >= i``).
    The anchor is the cell of the node we are estimating around; the
    classification mirrors the paper's Fig. 5.
    """
    if (anchor_i, anchor_j) == (cell_i, cell_j):
        return Region.SELF
    if cell_i == anchor_i:
        if cell_j < anchor_j:
            if cell_j == cell_i:
                return Region.DIAG_LOW
            return Region.SAME_COL_BELOW
        return Region.SAME_COL_ABOVE
    if cell_j == anchor_j:
        if cell_i > anchor_i:
            if cell_i == cell_j:
                return Region.DIAG_HIGH
            return Region.SAME_ROW_RIGHT
        return Region.SAME_ROW_LEFT
    if anchor_i < cell_i and cell_j < anchor_j:
        if cell_i == cell_j == anchor_j:  # unreachable, kept for clarity
            return Region.DIAG_HIGH
        return Region.INSIDE
    if cell_i < anchor_i and cell_j > anchor_j:
        return Region.OUTSIDE_ANC
    return Region.UNRELATED


def classify_pair(u: IntervalLabel, v: IntervalLabel) -> str:
    """Exact structural relation between two labeled nodes.

    Returns one of ``"ancestor"`` (u is a proper ancestor of v),
    ``"descendant"`` (u is a proper descendant of v), ``"self"`` (same
    interval) or ``"disjoint"``.  Because labels are unique and strictly
    nested, these four cases are exhaustive.
    """
    if u.start == v.start and u.end == v.end:
        return "self"
    if u.start < v.start and v.end < u.end:
        return "ancestor"
    if v.start < u.start and u.end < v.end:
        return "descendant"
    return "disjoint"
