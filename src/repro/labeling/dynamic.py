"""Gap-aware dynamic maintenance of interval labels.

The pre-order numbering of :func:`~repro.labeling.interval.label_forest`
is dense by default, which makes any structural update a full relabel.
For the online statistics service the forest is labeled with a
``spacing`` factor instead, leaving unused integer positions between
consecutive labels; this module allocates labels *inside* those gaps so
that a subtree can be inserted in place:

* :func:`plan_insert` finds the open label interval at the insertion
  point (as a new child of a parent, at any child position) and assigns
  start/end labels to every node of the incoming subtree, spreading them
  evenly over the gap so nested future inserts keep room of their own;
* :func:`apply_insert` splices the planned nodes into the labeled
  tree's flat arrays;
* :func:`apply_delete` removes a subtree's contiguous pre-order slice,
  returning its labels to the gap pool.

When an insertion point's gap cannot hold the incoming subtree,
:func:`plan_insert` raises :class:`GapExhausted` -- the signal for the
service layer that labels must be reassigned (a full rebuild).  All
splices keep every invariant of the labeling (``start < end``, strict
nesting, pre-order ``start`` order), so histograms built from the
mutated tree are exactly what a fresh build over the same tree yields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.xmltree.tree import Element


class GapExhausted(RuntimeError):
    """The label gap at an insertion point cannot hold the new subtree."""


@dataclass
class InsertPlan:
    """A fully-labeled pending insertion.

    Attributes
    ----------
    position:
        Pre-order index where the new nodes are spliced in (one past the
        parent's current last descendant).
    elements:
        The subtree's elements in pre-order.
    start, end, level, parent_index:
        Label arrays for the new nodes, aligned with ``elements``;
        ``parent_index`` already uses post-splice global numbering.
    stride:
        The gap step the labels were spread with (diagnostic).
    """

    position: int
    elements: list[Element]
    start: np.ndarray
    end: np.ndarray
    level: np.ndarray
    parent_index: np.ndarray
    stride: int

    @property
    def size(self) -> int:
        return len(self.elements)


def gap_after_last_child(tree: LabeledTree, parent: int) -> tuple[int, int]:
    """The open label interval ``(lo, hi)`` for a new last child.

    ``lo`` is the largest label already used inside the parent's subtree
    (the parent's own start when it is a leaf), ``hi`` the parent's end
    label; new labels must fall strictly between the two.
    """
    sub = tree.subtree_slice(parent)
    if sub.stop > parent + 1:
        lo = int(tree.end[parent + 1 : sub.stop].max())
    else:
        lo = int(tree.start[parent])
    return lo, int(tree.end[parent])


def child_indices(tree: LabeledTree, parent: int) -> np.ndarray:
    """Pre-order indices of the direct element children of ``parent``."""
    sub = tree.subtree_slice(parent)
    offset = parent + 1
    return offset + np.flatnonzero(tree.parent_index[offset : sub.stop] == parent)


def gap_for_insert(
    tree: LabeledTree, parent: int, child_position: Optional[int] = None
) -> tuple[int, int, int]:
    """The open label interval and splice point for a planned insertion.

    Returns ``(lo, hi, position)``: labels of the new subtree must fall
    strictly inside ``(lo, hi)``, and its nodes are spliced into the
    pre-order arrays at ``position``.  ``child_position`` is the 0-based
    rank among the parent's element children the new subtree takes
    (existing children at that rank and later shift right); ``None`` or
    the current child count appends as the last child.
    """
    if child_position is None:
        lo, hi = gap_after_last_child(tree, parent)
        return lo, hi, tree.subtree_slice(parent).stop
    if child_position < 0:
        raise ValueError(f"child position must be >= 0, got {child_position}")
    children = child_indices(tree, parent)
    if child_position >= len(children):
        lo, hi = gap_after_last_child(tree, parent)
        return lo, hi, tree.subtree_slice(parent).stop
    follower = int(children[child_position])
    if child_position == 0:
        lo = int(tree.start[parent])
    else:
        lo = int(tree.end[children[child_position - 1]])
    return lo, int(tree.start[follower]), follower


def slice_subtree_sizes(depth: np.ndarray, pslot: np.ndarray) -> np.ndarray:
    """Per-node subtree sizes for a pre-order slice, bottom-up.

    ``depth`` holds relative depths (top nodes of the slice at 1),
    ``pslot`` in-slice parent slots (-1 for top nodes).  One stable
    grouping by depth, then ``np.add.at`` folds each level's finished
    sizes into its parents -- O(n) work plus one kernel call per level.
    """
    sizes = np.ones(len(depth), dtype=np.int64)
    if len(depth) == 0:
        return sizes
    order = np.argsort(depth, kind="stable")
    sorted_d = depth[order]
    cuts = np.flatnonzero(
        np.concatenate(([True], sorted_d[1:] != sorted_d[:-1]))
    )
    groups = np.split(order, cuts[1:])
    for group in reversed(groups[1:]):  # deepest level first; top level has no in-slice parent
        np.add.at(sizes, pslot[group], sizes[group])
    return sizes


def spread_labels(
    depth: np.ndarray,
    pslot: np.ndarray,
    base: int,
    stride: int,
    hole_event: Optional[int] = None,
    hole_width: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized enter/exit label assignment for a pre-order slice.

    Node ``k`` (0-based pre-order slot, relative depth ``d_k``) has
    enter event ``e_k = 2k - d_k + 1`` and exit event
    ``e_k + 2*s_k - 1`` with ``s_k`` its subtree size; event ``t``
    receives label ``base + stride * (t + 1)`` -- exactly the sequence
    the sequential enter/exit walk emits.  When ``hole_event`` is set,
    events at or past it shift by ``hole_width``, reserving that many
    event positions (for a splice that will land inside the slice).
    """
    k = np.arange(len(depth), dtype=np.int64)
    sizes = slice_subtree_sizes(depth, pslot)
    entry = 2 * k - depth + 1
    exit_ = entry + 2 * sizes - 1
    if hole_event is not None:
        entry = np.where(entry >= hole_event, entry + hole_width, entry)
        exit_ = np.where(exit_ >= hole_event, exit_ + hole_width, exit_)
    starts = base + stride * (entry + 1)
    ends = base + stride * (exit_ + 1)
    return starts, ends


def _spread_labels_python(
    depth: np.ndarray,
    pslot: np.ndarray,
    base: int,
    stride: int,
    hole_event: Optional[int] = None,
    hole_width: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-vectorization enter/exit walk behind :func:`spread_labels`,
    kept as the bit-identity reference for the differential tests and
    the scale benchmark: one stack frame per event, one label per step,
    the hole skipped by bumping the counter when its event arrives."""
    n = len(depth)
    starts = np.empty(n, dtype=np.int64)
    ends = np.empty(n, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(n)]
    tops: list[int] = []
    for slot in range(n):
        p = int(pslot[slot])
        (tops if p < 0 else children[p]).append(slot)
    stack = [(slot, True) for slot in reversed(tops)]
    counter = base
    event = 0
    while stack:
        slot, entering = stack.pop()
        if hole_event is not None and event == hole_event:
            counter += stride * hole_width
        counter += stride
        event += 1
        if entering:
            starts[slot] = counter
            stack.append((slot, False))
            for child in reversed(children[slot]):
                stack.append((child, True))
        else:
            ends[slot] = counter
    return starts, ends


def plan_insert(
    tree: LabeledTree,
    parent: int,
    subtree: Element,
    child_position: Optional[int] = None,
) -> InsertPlan:
    """Label ``subtree`` for insertion as a child of node ``parent``.

    ``child_position`` selects the 0-based rank among the parent's
    element children (default: append as last child).  Walks the
    detached subtree in the same enter/exit order the offline labeler
    uses, assigning labels ``lo + stride * k`` so the new nodes spread
    evenly over the available gap.  Raises :class:`GapExhausted` when
    the gap has fewer free integer positions than the subtree needs
    (two labels per element).
    """
    if not 0 <= parent < len(tree):
        raise IndexError(f"parent index {parent} outside the tree")
    if subtree.parent is not None:
        raise ValueError("subtree to insert must be detached (parent is None)")
    # One light DFS collects pre-order slots, parent slots, and relative
    # depths; all label arithmetic after it is vectorized.  The walk
    # visits children in the same reversed-stack order as
    # ``Element.iter``, so slot numbering matches the offline labeler.
    elements: list[Element] = []
    parent_slots: list[int] = []
    depths: list[int] = []
    walk: list[tuple[Element, int, int]] = [(subtree, -1, 1)]
    while walk:
        node, pslot, d = walk.pop()
        slot = len(elements)
        elements.append(node)
        parent_slots.append(pslot)
        depths.append(d)
        for child in reversed(list(node.child_elements())):
            walk.append((child, slot, d + 1))

    need = 2 * len(elements)
    lo, hi, position = gap_for_insert(tree, parent, child_position)
    gap = hi - lo - 1
    if gap < need:
        raise GapExhausted(
            f"insertion under node {parent} needs {need} labels, gap has {gap}"
        )
    stride = gap // need
    parent_level = int(tree.level[parent])

    depth = np.asarray(depths, dtype=np.int64)
    pslot = np.asarray(parent_slots, dtype=np.int64)
    starts, ends = spread_labels(depth, pslot, lo, stride)
    levels = parent_level + depth
    parents = np.where(pslot < 0, parent, position + pslot)

    return InsertPlan(
        position=position,
        elements=elements,
        start=starts,
        end=ends,
        level=levels,
        parent_index=parents,
        stride=stride,
    )


def _plan_insert_python(
    tree: LabeledTree,
    parent: int,
    subtree: Element,
    child_position: Optional[int] = None,
) -> InsertPlan:
    """Pre-vectorization sequential walk, kept as the bit-identity
    reference for the differential tests and the scale benchmark."""
    if not 0 <= parent < len(tree):
        raise IndexError(f"parent index {parent} outside the tree")
    if subtree.parent is not None:
        raise ValueError("subtree to insert must be detached (parent is None)")
    elements = list(subtree.iter())
    need = 2 * len(elements)
    lo, hi, position = gap_for_insert(tree, parent, child_position)
    gap = hi - lo - 1
    if gap < need:
        raise GapExhausted(
            f"insertion under node {parent} needs {need} labels, gap has {gap}"
        )
    stride = gap // need
    parent_level = int(tree.level[parent])
    slot_of = {id(e): k for k, e in enumerate(elements)}

    starts = np.empty(len(elements), dtype=np.int64)
    ends = np.empty(len(elements), dtype=np.int64)
    levels = np.empty(len(elements), dtype=np.int64)
    parents = np.empty(len(elements), dtype=np.int64)

    counter = lo
    # Entry frames are (element, level); exit frames (None, slot).
    stack: list[tuple[Element | None, int]] = [(subtree, parent_level + 1)]
    while stack:
        node, value = stack.pop()
        counter += stride
        if node is None:
            ends[value] = counter
            continue
        slot = slot_of[id(node)]
        starts[slot] = counter
        levels[slot] = value
        parents[slot] = (
            parent if node is subtree else position + slot_of[id(node.parent)]
        )
        stack.append((None, slot))
        for child in reversed(list(node.child_elements())):
            stack.append((child, value + 1))

    return InsertPlan(
        position=position,
        elements=elements,
        start=starts,
        end=ends,
        level=levels,
        parent_index=parents,
        stride=stride,
    )


def apply_insert(tree: LabeledTree, plan: InsertPlan) -> None:
    """Splice a planned insertion into the tree's flat arrays.

    Every container is *replaced*, never written in place -- including
    the element list -- so a reader that grabbed references before the
    splice keeps a complete, internally consistent pre-splice view (the
    contract O(1) service snapshots rely on).
    """
    pos, size = plan.position, plan.size
    shifted_parents = np.where(
        tree.parent_index >= pos, tree.parent_index + size, tree.parent_index
    )
    tree.elements = [*tree.elements[:pos], *plan.elements, *tree.elements[pos:]]
    tree.start = np.concatenate([tree.start[:pos], plan.start, tree.start[pos:]])
    tree.end = np.concatenate([tree.end[:pos], plan.end, tree.end[pos:]])
    tree.level = np.concatenate([tree.level[:pos], plan.level, tree.level[pos:]])
    tree.parent_index = np.concatenate(
        [shifted_parents[:pos], plan.parent_index, shifted_parents[pos:]]
    )
    tree.invalidate_element_index()


def rebalance_for_insert(
    tree: LabeledTree,
    parent: int,
    need_elements: int,
    child_position: Optional[int] = None,
) -> Optional[tuple[int, int]]:
    """Respread labels locally so an exhausted gap can hold an insert.

    Walks up from ``parent`` to the smallest ancestor region whose label
    interval can hold its current occupants plus ``need_elements`` new
    nodes at integer stride, then respreads the region's labels evenly
    with a hole of ``2 * need_elements`` event positions reserved at the
    splice point.  Only ``tree.start``/``tree.end`` change (replaced,
    never written in place), only for nodes strictly inside the region;
    structure, levels and the region root's own labels are untouched.

    Returns the moved pre-order slice ``(lo, hi)`` (``hi`` exclusive) so
    the caller can patch maintained statistics, or ``None`` when no
    ancestor interval is wide enough (the full-relabel fallback).
    """
    region = parent
    while True:
        hi_idx = tree.subtree_slice(region).stop
        n_slice = hi_idx - region - 1
        width = int(tree.end[region]) - int(tree.start[region]) - 1
        stride = width // (2 * (n_slice + need_elements))
        if stride >= 1:
            break
        region = int(tree.parent_index[region])
        if region < 0:
            return None

    base = int(tree.start[region])
    lo_idx = region + 1
    depth = tree.level[lo_idx:hi_idx] - int(tree.level[region])
    region_parents = tree.parent_index[lo_idx:hi_idx]
    pslot = np.where(region_parents == region, -1, region_parents - lo_idx)
    sizes = slice_subtree_sizes(depth, pslot)
    entry = 2 * np.arange(n_slice, dtype=np.int64) - depth + 1

    children = child_indices(tree, parent)
    if child_position is None or child_position >= len(children):
        if parent == region:
            hole_event = 2 * n_slice
        else:
            slot = parent - lo_idx
            hole_event = int(entry[slot]) + 2 * int(sizes[slot]) - 1
    else:
        hole_event = int(entry[int(children[child_position]) - lo_idx])
    hole_width = 2 * need_elements

    exit_ = entry + 2 * sizes - 1
    entry = np.where(entry >= hole_event, entry + hole_width, entry)
    exit_ = np.where(exit_ >= hole_event, exit_ + hole_width, exit_)
    new_start = tree.start.copy()
    new_end = tree.end.copy()
    new_start[lo_idx:hi_idx] = base + stride * (entry + 1)
    new_end[lo_idx:hi_idx] = base + stride * (exit_ + 1)
    tree.start = new_start
    tree.end = new_end
    return lo_idx, hi_idx


def apply_delete(tree: LabeledTree, index: int) -> tuple[int, int]:
    """Remove node ``index`` and its whole subtree from the label table.

    Returns ``(position, count)`` of the removed pre-order slice.  The
    freed labels rejoin the gap at the parent, available to later
    inserts.  The caller is responsible for the document-model side
    (detaching the element from its parent's child list).  As with
    :func:`apply_insert`, every container -- element list included --
    is replaced rather than mutated, preserving pre-splice views.
    """
    if not 0 <= index < len(tree):
        raise IndexError(f"node index {index} outside the tree")
    sub = tree.subtree_slice(index)
    pos, count = sub.start, sub.stop - sub.start
    keep = np.ones(len(tree), dtype=bool)
    keep[pos : pos + count] = False
    parents = tree.parent_index[keep]
    parents = np.where(parents >= pos + count, parents - count, parents)
    tree.elements = [*tree.elements[:pos], *tree.elements[pos + count :]]
    tree.start = tree.start[keep]
    tree.end = tree.end[keep]
    tree.level = tree.level[keep]
    tree.parent_index = parents
    tree.invalidate_element_index()
    return pos, count
