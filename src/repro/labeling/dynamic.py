"""Gap-aware dynamic maintenance of interval labels.

The pre-order numbering of :func:`~repro.labeling.interval.label_forest`
is dense by default, which makes any structural update a full relabel.
For the online statistics service the forest is labeled with a
``spacing`` factor instead, leaving unused integer positions between
consecutive labels; this module allocates labels *inside* those gaps so
that a subtree can be inserted in place:

* :func:`plan_insert` finds the open label interval at the insertion
  point (as a new child of a parent, at any child position) and assigns
  start/end labels to every node of the incoming subtree, spreading them
  evenly over the gap so nested future inserts keep room of their own;
* :func:`apply_insert` splices the planned nodes into the labeled
  tree's flat arrays;
* :func:`apply_delete` removes a subtree's contiguous pre-order slice,
  returning its labels to the gap pool.

When an insertion point's gap cannot hold the incoming subtree,
:func:`plan_insert` raises :class:`GapExhausted` -- the signal for the
service layer that labels must be reassigned (a full rebuild).  All
splices keep every invariant of the labeling (``start < end``, strict
nesting, pre-order ``start`` order), so histograms built from the
mutated tree are exactly what a fresh build over the same tree yields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.xmltree.tree import Element


class GapExhausted(RuntimeError):
    """The label gap at an insertion point cannot hold the new subtree."""


@dataclass
class InsertPlan:
    """A fully-labeled pending insertion.

    Attributes
    ----------
    position:
        Pre-order index where the new nodes are spliced in (one past the
        parent's current last descendant).
    elements:
        The subtree's elements in pre-order.
    start, end, level, parent_index:
        Label arrays for the new nodes, aligned with ``elements``;
        ``parent_index`` already uses post-splice global numbering.
    stride:
        The gap step the labels were spread with (diagnostic).
    """

    position: int
    elements: list[Element]
    start: np.ndarray
    end: np.ndarray
    level: np.ndarray
    parent_index: np.ndarray
    stride: int

    @property
    def size(self) -> int:
        return len(self.elements)


def gap_after_last_child(tree: LabeledTree, parent: int) -> tuple[int, int]:
    """The open label interval ``(lo, hi)`` for a new last child.

    ``lo`` is the largest label already used inside the parent's subtree
    (the parent's own start when it is a leaf), ``hi`` the parent's end
    label; new labels must fall strictly between the two.
    """
    sub = tree.subtree_slice(parent)
    if sub.stop > parent + 1:
        lo = int(tree.end[parent + 1 : sub.stop].max())
    else:
        lo = int(tree.start[parent])
    return lo, int(tree.end[parent])


def child_indices(tree: LabeledTree, parent: int) -> np.ndarray:
    """Pre-order indices of the direct element children of ``parent``."""
    sub = tree.subtree_slice(parent)
    offset = parent + 1
    return offset + np.flatnonzero(tree.parent_index[offset : sub.stop] == parent)


def gap_for_insert(
    tree: LabeledTree, parent: int, child_position: Optional[int] = None
) -> tuple[int, int, int]:
    """The open label interval and splice point for a planned insertion.

    Returns ``(lo, hi, position)``: labels of the new subtree must fall
    strictly inside ``(lo, hi)``, and its nodes are spliced into the
    pre-order arrays at ``position``.  ``child_position`` is the 0-based
    rank among the parent's element children the new subtree takes
    (existing children at that rank and later shift right); ``None`` or
    the current child count appends as the last child.
    """
    if child_position is None:
        lo, hi = gap_after_last_child(tree, parent)
        return lo, hi, tree.subtree_slice(parent).stop
    if child_position < 0:
        raise ValueError(f"child position must be >= 0, got {child_position}")
    children = child_indices(tree, parent)
    if child_position >= len(children):
        lo, hi = gap_after_last_child(tree, parent)
        return lo, hi, tree.subtree_slice(parent).stop
    follower = int(children[child_position])
    if child_position == 0:
        lo = int(tree.start[parent])
    else:
        lo = int(tree.end[children[child_position - 1]])
    return lo, int(tree.start[follower]), follower


def plan_insert(
    tree: LabeledTree,
    parent: int,
    subtree: Element,
    child_position: Optional[int] = None,
) -> InsertPlan:
    """Label ``subtree`` for insertion as a child of node ``parent``.

    ``child_position`` selects the 0-based rank among the parent's
    element children (default: append as last child).  Walks the
    detached subtree in the same enter/exit order the offline labeler
    uses, assigning labels ``lo + stride * k`` so the new nodes spread
    evenly over the available gap.  Raises :class:`GapExhausted` when
    the gap has fewer free integer positions than the subtree needs
    (two labels per element).
    """
    if not 0 <= parent < len(tree):
        raise IndexError(f"parent index {parent} outside the tree")
    if subtree.parent is not None:
        raise ValueError("subtree to insert must be detached (parent is None)")
    elements = list(subtree.iter())
    need = 2 * len(elements)
    lo, hi, position = gap_for_insert(tree, parent, child_position)
    gap = hi - lo - 1
    if gap < need:
        raise GapExhausted(
            f"insertion under node {parent} needs {need} labels, gap has {gap}"
        )
    stride = gap // need
    parent_level = int(tree.level[parent])
    slot_of = {id(e): k for k, e in enumerate(elements)}

    starts = np.empty(len(elements), dtype=np.int64)
    ends = np.empty(len(elements), dtype=np.int64)
    levels = np.empty(len(elements), dtype=np.int64)
    parents = np.empty(len(elements), dtype=np.int64)

    counter = lo
    # Entry frames are (element, level); exit frames (None, slot).
    stack: list[tuple[Element | None, int]] = [(subtree, parent_level + 1)]
    while stack:
        node, value = stack.pop()
        counter += stride
        if node is None:
            ends[value] = counter
            continue
        slot = slot_of[id(node)]
        starts[slot] = counter
        levels[slot] = value
        parents[slot] = (
            parent if node is subtree else position + slot_of[id(node.parent)]
        )
        stack.append((None, slot))
        for child in reversed(list(node.child_elements())):
            stack.append((child, value + 1))

    return InsertPlan(
        position=position,
        elements=elements,
        start=starts,
        end=ends,
        level=levels,
        parent_index=parents,
        stride=stride,
    )


def apply_insert(tree: LabeledTree, plan: InsertPlan) -> None:
    """Splice a planned insertion into the tree's flat arrays.

    Every container is *replaced*, never written in place -- including
    the element list -- so a reader that grabbed references before the
    splice keeps a complete, internally consistent pre-splice view (the
    contract O(1) service snapshots rely on).
    """
    pos, size = plan.position, plan.size
    shifted_parents = np.where(
        tree.parent_index >= pos, tree.parent_index + size, tree.parent_index
    )
    tree.elements = [*tree.elements[:pos], *plan.elements, *tree.elements[pos:]]
    tree.start = np.concatenate([tree.start[:pos], plan.start, tree.start[pos:]])
    tree.end = np.concatenate([tree.end[:pos], plan.end, tree.end[pos:]])
    tree.level = np.concatenate([tree.level[:pos], plan.level, tree.level[pos:]])
    tree.parent_index = np.concatenate(
        [shifted_parents[:pos], plan.parent_index, shifted_parents[pos:]]
    )
    tree.invalidate_element_index()


def apply_delete(tree: LabeledTree, index: int) -> tuple[int, int]:
    """Remove node ``index`` and its whole subtree from the label table.

    Returns ``(position, count)`` of the removed pre-order slice.  The
    freed labels rejoin the gap at the parent, available to later
    inserts.  The caller is responsible for the document-model side
    (detaching the element from its parent's child list).  As with
    :func:`apply_insert`, every container -- element list included --
    is replaced rather than mutated, preserving pre-splice views.
    """
    if not 0 <= index < len(tree):
        raise IndexError(f"node index {index} outside the tree")
    sub = tree.subtree_slice(index)
    pos, count = sub.start, sub.stop - sub.start
    keep = np.ones(len(tree), dtype=bool)
    keep[pos : pos + count] = False
    parents = tree.parent_index[keep]
    parents = np.where(parents >= pos + count, parents - count, parents)
    tree.elements = [*tree.elements[:pos], *tree.elements[pos + count :]]
    tree.start = tree.start[keep]
    tree.end = tree.end[keep]
    tree.level = tree.level[keep]
    tree.parent_index = parents
    tree.invalidate_element_index()
    return pos, count
