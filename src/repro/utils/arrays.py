"""Shared integer-array kernels for the columnar operators."""

from __future__ import annotations

import numpy as np


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenate ``[lo[k], hi[k])`` integer ranges into one flat array.

    The workhorse of pair enumeration and binding expansion: given
    per-item half-open position ranges, produce every position with no
    per-range Python loop.  Position ``r`` of the output belongs to
    range ``k = owner(r)``; its value is ``lo[k] + (r - offset[k])``
    with ``offset`` the exclusive prefix sum of the range lengths.
    """
    counts = hi - lo
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(lo, counts)
    )


def group_by_code(codes: np.ndarray) -> dict[int, np.ndarray]:
    """Slots grouped by integer code (stable: ascending within a group).

    One stable argsort + boundary scan, shared by the catalog's per-tag
    index and the sharded statistics builder so both produce the same
    group ordering -- the bit-identity contract between catalog-built
    and shard-built tag indices rests on it.
    """
    if codes.size == 0:
        return {}
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    cuts = np.flatnonzero(
        np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
    )
    groups = np.split(order, cuts[1:])
    return {int(sorted_codes[cut]): group for cut, group in zip(cuts, groups)}
