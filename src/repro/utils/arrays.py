"""Shared integer-array kernels for the columnar operators."""

from __future__ import annotations

import numpy as np


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenate ``[lo[k], hi[k])`` integer ranges into one flat array.

    The workhorse of pair enumeration and binding expansion: given
    per-item half-open position ranges, produce every position with no
    per-range Python loop.  Position ``r`` of the output belongs to
    range ``k = owner(r)``; its value is ``lo[k] + (r - offset[k])``
    with ``offset`` the exclusive prefix sum of the range lengths.
    """
    counts = hi - lo
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(lo, counts)
    )
