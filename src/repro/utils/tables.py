"""Plain-text table rendering for the experiment harnesses.

The benchmark scripts print tables shaped like the paper's Tables 1-4 so
paper-vs-measured comparison is a side-by-side read.  No external
dependency; column widths adapt to content.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    Cells are str()-ed; numeric-looking cells are right-aligned, others
    left-aligned.
    """
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[c]))
            else:
                parts.append(cell.ljust(widths[c]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    for row in text_rows:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "N/A"
        if cell == float("inf"):
            return "N/A"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:,.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    stripped = stripped.replace("e", "").replace("+", "")
    return stripped.isdigit() and len(stripped) > 0
