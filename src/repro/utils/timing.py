"""Timing helpers used for the paper's "Est Time" measurements."""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, TypeVar

T = TypeVar("T")


class Timer:
    """Context manager measuring wall-clock time with ``perf_counter``.

    ::

        with Timer() as timer:
            do_work()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def median_time(fn: Callable[[], T], repeats: int = 5) -> tuple[T, float]:
    """Run ``fn`` several times; return the last result and median time.

    The paper reports per-query estimation times of fractions of a
    millisecond; a median over a few repeats keeps those numbers stable
    against scheduler noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times: list[float] = []
    result: T
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return result, times[len(times) // 2]
