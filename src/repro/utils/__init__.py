"""Shared utilities: timing, table rendering, deterministic RNG helpers."""

from repro.utils.tables import format_table
from repro.utils.timing import Timer, time_call

__all__ = ["Timer", "format_table", "time_call"]
