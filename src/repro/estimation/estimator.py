"""The public estimation facade: :class:`AnswerSizeEstimator`.

Binds together a labeled database tree, a predicate catalog, histogram
caches, and all estimation algorithms, so that end users (and the
benchmark harnesses) write::

    estimator = AnswerSizeEstimator(tree, grid_size=10)
    result = estimator.estimate("//article//author")
    real = estimator.real_answer("//article//author")

Estimation method selection follows the paper: when the ancestor
predicate of a primitive pattern has the no-overlap property (from the
data or asserted via schema), the coverage-based no-overlap estimator is
used; otherwise the primitive pH-join.  The same rule applies per join
inside twig cascades.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.estimation.leveljoin import ph_join_level_refined, ph_join_parent_child
from repro.estimation.naive import naive_product_estimate, upper_bound_estimate
from repro.estimation.nooverlap import no_overlap_estimate
from repro.estimation.phjoin import (
    ancestor_based_coefficients,
    ph_join,
    ph_join_literal,
    reference_region_estimate,
)
from repro.estimation.result import EstimationResult
from repro.estimation.twig import TwigEstimator
from repro.histograms.adaptive import equi_depth_grid
from repro.histograms.coverage import CoverageHistogram, build_coverage_histogram
from repro.histograms.grid import GridSpec
from repro.histograms.levels import LevelPositionHistogram, build_level_histogram
from repro.histograms.position import PositionHistogram, build_position_histogram
from repro.histograms.storage import coverage_storage_bytes, position_storage_bytes
from repro.histograms.truehist import build_true_histogram
from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate, TagPredicate
from repro.predicates.catalog import PredicateCatalog
from repro.query.matcher import count_matches, count_pairs
from repro.query.pattern import Axis, PatternTree
from repro.query.xpath import parse_xpath
from repro.utils.timing import time_call

Query = Union[str, PatternTree]


class AnswerSizeEstimator:
    """Answer-size estimation service over one XML database tree.

    Parameters
    ----------
    tree:
        The labeled database tree.
    grid_size:
        Side of the histogram grid (the paper defaults to 10).
    catalog:
        Optional pre-populated predicate catalog to share across
        estimators.
    grid:
        ``"uniform"`` (default, the paper's setting) or ``"equi-depth"``
        for quantile bucket boundaries (the paper's non-uniform-grid
        future-work extension).
    schema:
        Optional :class:`~repro.dtd.analyzer.SchemaAnalysis`.  When
        given, the paper's Section 4 shortcuts apply: schema-impossible
        nestings estimate to exactly zero, and sole-parent/no-overlap
        pairs estimate to the exact descendant count -- both without
        touching histograms.
    """

    def __init__(
        self,
        tree: LabeledTree,
        grid_size: int = 10,
        catalog: Optional[PredicateCatalog] = None,
        grid: str = "uniform",
        schema=None,
    ) -> None:
        if grid_size < 1:
            raise ValueError(f"grid size must be >= 1, got {grid_size}")
        self.tree = tree
        if grid == "uniform":
            self.grid = GridSpec(grid_size, tree.max_label)
        elif grid == "equi-depth":
            self.grid = equi_depth_grid(tree, grid_size)
        else:
            raise ValueError(f"grid must be 'uniform' or 'equi-depth', got {grid!r}")
        self.catalog = catalog if catalog is not None else PredicateCatalog(tree)
        self.schema = schema
        self._true_hist: Optional[PositionHistogram] = None
        self._position_cache: dict[Predicate, PositionHistogram] = {}
        self._coverage_cache: dict[Predicate, Optional[CoverageHistogram]] = {}
        self._level_cache: dict[Predicate, LevelPositionHistogram] = {}
        self._coefficient_cache: dict[Predicate, np.ndarray] = {}

    # -- summary structures --------------------------------------------------

    @property
    def true_histogram(self) -> PositionHistogram:
        """The TRUE histogram (all nodes), built lazily."""
        if self._true_hist is None:
            self._true_hist = build_true_histogram(self.tree, self.grid)
        return self._true_hist

    def position_histogram(self, predicate: Predicate) -> PositionHistogram:
        """The position histogram of a predicate (cached)."""
        if predicate not in self._position_cache:
            stats = self.catalog.stats(predicate)
            self._position_cache[predicate] = build_position_histogram(
                self.tree, stats.node_indices, self.grid, name=predicate.name
            )
        return self._position_cache[predicate]

    def coverage_histogram(self, predicate: Predicate) -> Optional[CoverageHistogram]:
        """The coverage histogram, or None for overlap predicates.

        Coverage is only meaningful (and only built) for predicates with
        the no-overlap property, mirroring the paper's storage policy.
        """
        if predicate not in self._coverage_cache:
            stats = self.catalog.stats(predicate)
            if stats.effective_no_overlap:
                self._coverage_cache[predicate] = build_coverage_histogram(
                    self.tree,
                    stats.node_indices,
                    self.true_histogram,
                    name=predicate.name,
                )
            else:
                self._coverage_cache[predicate] = None
        return self._coverage_cache[predicate]

    def level_histogram(self, predicate: Predicate) -> LevelPositionHistogram:
        """The level-augmented position histogram (cached).

        Used by the parent-child and level-refined estimators; built on
        first use, like the plain position histograms.
        """
        if predicate not in self._level_cache:
            stats = self.catalog.stats(predicate)
            self._level_cache[predicate] = build_level_histogram(
                self.tree, stats.node_indices, self.grid, name=predicate.name
            )
        return self._level_cache[predicate]

    def join_coefficients(self, descendant: Predicate) -> np.ndarray:
        """Precomputed per-cell join coefficients for a descendant
        predicate (paper Section 3.3's space-time tradeoff).

        Multiplying an ancestor histogram cell-wise by this matrix and
        summing yields the ancestor-based pH-join estimate; the matrix
        depends only on the descendant operand, so it is computed once
        and reused across queries.
        """
        if descendant not in self._coefficient_cache:
            self._coefficient_cache[descendant] = ancestor_based_coefficients(
                self.position_histogram(descendant).dense()
            )
        return self._coefficient_cache[descendant]

    def invalidate_derived(self, predicate: Predicate) -> bool:
        """Drop the caches *derived from* ``predicate``'s node set that
        cannot be delta-patched: the level histogram and the pH-join
        coefficient kernel.  The position histogram is left in place --
        the statistics service maintains it with exact cell deltas.

        Returns True when a coefficient kernel was actually dropped, so
        the service can report how much Section 3.3 precomputation an
        update cost.
        """
        self._level_cache.pop(predicate, None)
        return self._coefficient_cache.pop(predicate, None) is not None

    def is_no_overlap(self, predicate: Predicate) -> bool:
        """Whether the estimators treat ``predicate`` as no-overlap."""
        return self.catalog.stats(predicate).effective_no_overlap

    def storage_bytes(self, predicate: Predicate) -> dict[str, int]:
        """Summary storage cost of a predicate under the byte model."""
        out = {"position": position_storage_bytes(self.position_histogram(predicate))}
        coverage = self.coverage_histogram(predicate)
        out["coverage"] = coverage_storage_bytes(coverage) if coverage else 0
        return out

    # -- primitive (two-node) estimation --------------------------------------

    def estimate_pair(
        self,
        ancestor: Predicate,
        descendant: Predicate,
        method: str = "auto",
        based: str = "ancestor",
    ) -> EstimationResult:
        """Estimate ``|ancestor // descendant|`` with a chosen method.

        ``method`` is one of:

        * ``"auto"`` -- no-overlap when the ancestor predicate has the
          property, else pH-join (the paper's policy);
        * ``"ph-join"`` -- the primitive estimator regardless;
        * ``"ph-join-literal"`` -- the paper's Fig. 9 pseudo-code;
        * ``"reference"`` -- the O(g^4) region-weight reference;
        * ``"no-overlap"`` -- coverage-based (requires the property);
        * ``"naive"`` -- cardinality product;
        * ``"upper-bound"`` -- descendant count (requires the property);
        * ``"ph-join-precomputed"`` -- pH-join via cached coefficients
          (paper Section 3.3's space-time tradeoff);
        * ``"ph-join-level"`` -- level-refined pH-join;
        * ``"ph-join-child"`` -- parent-child (``/``) estimation via
          level-augmented histograms;
        * ``"auto-precomputed"`` -- like ``"auto"`` but the pH-join
          branch uses the cached coefficients, so repeated descendant
          operands across a workload share the kernel (numerically
          identical to ``"ph-join"`` based on the ancestor).
        """
        if method in ("auto", "auto-precomputed"):
            # Paper Section 4: schema knowledge first.  An impossible
            # nesting is exactly zero; a mandatory sole parent with a
            # no-overlap ancestor yields exactly the descendant count.
            if self.schema_zero(ancestor, descendant):
                return EstimationResult(value=0.0, method="schema-zero",
                                        elapsed_seconds=0.0)
            exact = self._schema_exact(ancestor, descendant)
            if exact is not None:
                return EstimationResult(value=exact, method="schema-exact",
                                        elapsed_seconds=0.0)
        hist_anc = self.position_histogram(ancestor)
        hist_desc = self.position_histogram(descendant)
        if method in ("auto", "auto-precomputed"):
            overlap_method = (
                "ph-join-precomputed" if method == "auto-precomputed" else "ph-join"
            )
            method = "no-overlap" if self.is_no_overlap(ancestor) else overlap_method
        if method == "ph-join":
            return ph_join(hist_anc, hist_desc, based=based)
        if method == "ph-join-literal":
            return ph_join_literal(hist_anc, hist_desc)
        if method == "ph-join-precomputed":
            coefficients = self.join_coefficients(descendant)

            def run() -> float:
                return float((hist_anc.dense() * coefficients).sum())

            value, elapsed = time_call(run)
            return EstimationResult(
                value=value, method="ph-join-precomputed", elapsed_seconds=elapsed
            )
        if method == "ph-join-level":
            return ph_join_level_refined(
                self.level_histogram(ancestor), self.level_histogram(descendant)
            )
        if method == "ph-join-child":
            return ph_join_parent_child(
                self.level_histogram(ancestor), self.level_histogram(descendant)
            )
        if method == "reference":
            return reference_region_estimate(hist_anc, hist_desc, based=based)
        if method == "no-overlap":
            coverage = self.coverage_histogram(ancestor)
            if coverage is None:
                raise ValueError(
                    f"predicate {ancestor.name!r} lacks the no-overlap property"
                )
            return no_overlap_estimate(hist_anc, coverage, hist_desc)
        if method == "naive":
            return naive_product_estimate(hist_anc.total(), hist_desc.total())
        if method == "upper-bound":
            return upper_bound_estimate(
                hist_desc.total(), self.is_no_overlap(ancestor)
            )
        raise ValueError(f"unknown estimation method {method!r}")

    # -- schema shortcuts (paper Section 4, first paragraph) --------------------

    def schema_zero(self, ancestor: Predicate, descendant: Predicate) -> bool:
        """True when the answer is provably zero without histograms.

        Two sources: Definition 2 directly (a no-overlap predicate can
        never pair with itself), and DTD containment analysis when a
        schema was supplied.
        """
        if ancestor == descendant and self.is_no_overlap(ancestor):
            return True
        if self.schema is None:
            return False
        anc_tag = getattr(ancestor, "tag", None)
        desc_tag = getattr(descendant, "tag", None)
        if isinstance(anc_tag, str) and isinstance(desc_tag, str):
            return self.schema.zero_answer(anc_tag, desc_tag)
        return False

    def _schema_exact(
        self, ancestor: Predicate, descendant: Predicate
    ) -> Optional[float]:
        """The paper's uniqueness shortcut: when every descendant-tag
        element must sit under an ancestor-tag parent and the ancestor
        is no-overlap, the answer is exactly the descendant count."""
        if self.schema is None:
            return None
        # The ancestor must be the bare tag predicate: a compound
        # ancestor selects only a subset of the tag's nodes, so the sole
        # parent of a descendant need not satisfy it.
        if not isinstance(ancestor, TagPredicate):
            return None
        anc_tag = ancestor.tag
        desc_tag = getattr(descendant, "tag", None)
        if not isinstance(desc_tag, str):
            return None
        # Sound for any tag-scoped descendant: every matching descendant
        # has the descendant tag, hence a mandatory ancestor-tag parent.
        if (
            self.schema.sole_parent(desc_tag) == anc_tag
            and self.schema.no_overlap(anc_tag)
        ):
            return float(self.catalog.stats(descendant).count)
        return None

    # -- ordered semantics -----------------------------------------------------

    def estimate_following(
        self, before: Predicate, after: Predicate
    ) -> EstimationResult:
        """Estimate pairs where a ``before`` node entirely precedes an
        ``after`` node in document order (future-work extension)."""
        from repro.estimation.ordered import ph_join_following

        return ph_join_following(
            self.position_histogram(before), self.position_histogram(after)
        )

    def real_following(self, before: Predicate, after: Predicate) -> int:
        """Exact count of document-order (before, after) pairs."""
        from repro.estimation.ordered import count_following_pairs

        return count_following_pairs(
            self.tree,
            self.catalog.stats(before).node_indices,
            self.catalog.stats(after).node_indices,
        )

    # -- twig estimation -------------------------------------------------------

    def twig_estimator(self) -> TwigEstimator:
        """A :class:`TwigEstimator` wired to this estimator's caches."""
        return TwigEstimator(
            histogram_provider=self.position_histogram,
            coverage_provider=self.coverage_histogram,
            grid_size=self.grid.size,
            zero_hook=self.schema_zero,
        )

    def estimate(self, query: Query) -> EstimationResult:
        """Estimate the answer size of a twig query (pattern or XPath).

        Two-node patterns route through :meth:`estimate_pair` with the
        paper's automatic method choice; larger twigs run the cascade.
        """
        return self._estimate_pattern(self._as_pattern(query))

    def _estimate_pattern(
        self,
        pattern: PatternTree,
        overlap_method: str = "auto",
        twig: Optional[TwigEstimator] = None,
    ) -> EstimationResult:
        """Single routing point for both the single and batch APIs.

        ``overlap_method`` is the method handed to :meth:`estimate_pair`
        for ``//`` pairs (``"auto"`` or its coefficient-cached twin);
        ``twig`` lets a batch caller reuse one cascade estimator.
        """
        nodes = pattern.nodes()
        if len(nodes) == 2:
            if nodes[1].axis is Axis.CHILD:
                return self.estimate_pair(
                    nodes[0].predicate, nodes[1].predicate, method="ph-join-child"
                )
            return self.estimate_pair(
                nodes[0].predicate, nodes[1].predicate, method=overlap_method
            )
        return (twig if twig is not None else self.twig_estimator()).estimate(pattern)

    # -- batched estimation ----------------------------------------------------

    def estimate_many(self, queries: Sequence[Query]) -> list[EstimationResult]:
        """Estimate a whole workload, amortising the shared machinery.

        Sequential :meth:`estimate` calls repeat work a workload shares:
        predicate scans run one element pass each, pH-join coefficient
        kernels are recomputed per query, and duplicate queries are
        estimated from scratch.  This method instead

        1. registers every predicate of the workload in one
           :meth:`~repro.predicates.catalog.PredicateCatalog.register_many`
           call (tag-scoped predicates hit the per-tag index; the rest
           share a single fused element scan),
        2. builds each distinct position histogram once up front,
        3. routes primitive ``//`` patterns through the precomputed
           coefficient cache, so repeated descendant operands share one
           kernel evaluation (``"auto-precomputed"``, numerically
           identical to the per-query pH-join), and
        4. deduplicates textually identical queries, estimating each
           distinct query once.

        Returns one result per input query, aligned with ``queries``;
        duplicate queries share the same result object.
        """
        patterns = [self._as_pattern(q) for q in queries]
        predicates = [
            node.predicate for pattern in patterns for node in pattern.nodes()
        ]
        self.catalog.register_many(predicates)
        for predicate in dict.fromkeys(predicates):
            self.position_histogram(predicate)

        twig = self.twig_estimator()
        cache: dict[tuple, EstimationResult] = {}
        out: list[EstimationResult] = []
        for pattern in patterns:
            key = self._pattern_key(pattern.root)
            result = cache.get(key)
            if result is None:
                result = self._estimate_pattern(
                    pattern, overlap_method="auto-precomputed", twig=twig
                )
                cache[key] = result
            out.append(result)
        return out

    @staticmethod
    def _pattern_key(node) -> tuple:
        """Structural identity of a pattern subtree.

        Built from the predicate value objects themselves (not their
        display names, which can collide across predicate types), so
        deduplication only merges genuinely identical queries.
        """
        return (
            node.predicate,
            node.axis,
            tuple(AnswerSizeEstimator._pattern_key(c) for c in node.children),
        )

    # -- ground truth ------------------------------------------------------------

    def real_answer(self, query: Query) -> int:
        """Exact number of matches (the tables' "Real Result" column)."""
        pattern = self._as_pattern(query)
        nodes = pattern.nodes()
        if len(nodes) == 2 and not pattern.has_child_axis():
            anc = self.catalog.stats(nodes[0].predicate).node_indices
            desc = self.catalog.stats(nodes[1].predicate).node_indices
            return count_pairs(self.tree, anc, desc)
        return count_matches(self.tree, pattern)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _as_pattern(query: Query) -> PatternTree:
        if isinstance(query, PatternTree):
            return query
        return parse_xpath(query)
