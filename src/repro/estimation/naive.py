"""Baseline estimators from the paper's motivating discussion.

Section 2 of the paper walks through the faculty//TA example: without
structural information the best estimate is the cardinality product
(15); knowing the ancestor tag is not nested caps the answer at the
descendant count (5); the real answer is 2.  These two baselines fill
the "Naive" and "Desc Num" columns of Table 2 and the "Naive Est" column
of Table 4.
"""

from __future__ import annotations

from repro.estimation.result import EstimationResult
from repro.utils.timing import time_call


def naive_product_estimate(
    ancestor_count: float, descendant_count: float
) -> EstimationResult:
    """The cardinality product |P1| * |P2| -- no structure at all."""
    value, elapsed = time_call(lambda: float(ancestor_count) * float(descendant_count))
    return EstimationResult(value=value, method="naive", elapsed_seconds=elapsed)


def upper_bound_estimate(
    descendant_count: float, ancestor_no_overlap: bool
) -> EstimationResult:
    """The schema-only upper bound.

    When the ancestor predicate has the no-overlap property, every
    descendant node joins with at most one ancestor, so the answer is at
    most the descendant cardinality.  Without that property no such
    bound exists and the estimator declines (returns ``inf``), matching
    the N/A entries of the paper's tables.
    """
    if not ancestor_no_overlap:
        return EstimationResult(value=float("inf"), method="upper-bound")
    return EstimationResult(value=float(descendant_count), method="upper-bound")
