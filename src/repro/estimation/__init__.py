"""Answer-size estimation algorithms.

* :mod:`repro.estimation.naive` -- the baselines of the paper's Tables 2
  and 4: the naive cardinality product and the schema-only upper bound.
* :mod:`repro.estimation.phjoin` -- the primitive estimation formulae
  (paper Fig. 6) and Algorithm pH-Join (paper Fig. 9), in three
  implementations: a literal transcription of the paper's pseudo-code, a
  vectorised numpy version, and an O(g^4) first-principles reference used
  to cross-check both.
* :mod:`repro.estimation.nooverlap` -- the no-overlap estimation
  formulae of paper Fig. 10 (coverage-based estimate, participation via
  the occupancy formula, join factors, coverage propagation).
* :mod:`repro.estimation.twig` -- cascading the pairwise estimators
  bottom-up over arbitrary pattern trees.
* :mod:`repro.estimation.estimator` -- :class:`AnswerSizeEstimator`, the
  public facade binding a labeled tree, a predicate catalog, and
  histogram caches.
"""

from repro.estimation.estimator import AnswerSizeEstimator
from repro.estimation.naive import naive_product_estimate, upper_bound_estimate
from repro.estimation.nooverlap import (
    no_overlap_estimate,
    participation_ancestor,
    participation_descendant,
)
from repro.estimation.phjoin import (
    ph_join,
    ph_join_literal,
    reference_region_estimate,
)
from repro.estimation.result import EstimationResult
from repro.estimation.twig import TwigEstimator

__all__ = [
    "AnswerSizeEstimator",
    "EstimationResult",
    "TwigEstimator",
    "naive_product_estimate",
    "no_overlap_estimate",
    "participation_ancestor",
    "participation_descendant",
    "ph_join",
    "ph_join_literal",
    "reference_region_estimate",
    "upper_bound_estimate",
]
