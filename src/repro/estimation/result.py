"""Result object returned by every estimator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class EstimationResult:
    """An answer-size estimate with provenance.

    Attributes
    ----------
    value:
        The estimated number of matches (float; estimates are expected
        values, not integers).
    method:
        Which estimator produced it ("naive", "upper-bound", "ph-join",
        "no-overlap", "twig", ...).  Mirrors the column structure of the
        paper's Tables 2 and 4.
    elapsed_seconds:
        Wall-clock time spent computing the estimate (the paper's
        "Est Time" columns).  None when not measured.
    per_cell:
        Optional estimation histogram: the per-grid-cell contribution
        (``EstP12[A]`` of the paper's Fig. 6).  Needed when the estimate
        feeds a cascaded twig join; plain callers can ignore it.
    """

    value: float
    method: str
    elapsed_seconds: Optional[float] = None
    per_cell: Optional[np.ndarray] = field(default=None, repr=False)

    def ratio_to(self, real: float) -> float:
        """Estimate / real -- the accuracy metric of paper Figs. 11-12.

        Returns ``inf`` when the real answer is zero but the estimate is
        not, and 1.0 when both are zero.
        """
        if real == 0:
            return 1.0 if self.value == 0 else float("inf")
        return self.value / real

    def __str__(self) -> str:
        timing = (
            f", {self.elapsed_seconds:.6f}s" if self.elapsed_seconds is not None else ""
        )
        return f"{self.value:,.1f} [{self.method}{timing}]"
