"""Cascaded estimation for arbitrary twig patterns.

The paper's Fig. 10 defines, besides the primitive pattern-count
estimate, the bookkeeping needed to *chain* estimates through a larger
pattern tree: per-cell participation histograms (how many nodes of a
predicate take part in the sub-pattern matched so far), join factors
(matches per participating node), and coverage propagation.  This module
implements that cascade bottom-up over a
:class:`~repro.query.pattern.PatternTree`.

For every query node ``q`` we maintain a :class:`SubpatternState`:

* ``participation[i, j]`` -- estimated number of q-nodes in cell (i, j)
  that root at least one match of the subtree pattern below q
  (``Hist_AB_Px`` in the paper's notation);
* ``join_factor[i, j]`` -- estimated matches of the subtree per
  participating q-node (``Jn_Fct``);
* ``coverage`` -- the re-weighted coverage histogram when q's predicate
  has the no-overlap property (``Cvg_AB_P1``), else None.

Joining q with a child subtree c uses

* the **no-overlap formulae** (Fig. 10) when q's predicate is
  no-overlap: coverage-driven estimate, occupancy-formula participation
  ``N (1 - ((N-1)/N)^M)``, coverage re-weighting; or
* the **primitive pH-join** (Fig. 6/9) otherwise, in which case
  participation equals the estimate itself (Fig. 10, participation
  case 1) and the join factor resets to 1.

The final answer-size estimate is ``sum_cells participation * join_factor``
at the root.  Parent-child edges are estimated as ancestor-descendant
(the histogram carries no level information; the paper defers
parent-child to its tech report) -- the approximation error is measured
by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.estimation.phjoin import ancestor_based_coefficients
from repro.estimation.result import EstimationResult
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.position import PositionHistogram
from repro.query.pattern import PatternNode, PatternTree
from repro.utils.timing import time_call


@dataclass
class SubpatternState:
    """Estimation state for the subpattern rooted at one query node."""

    participation: np.ndarray
    join_factor: np.ndarray
    coverage: Optional[CoverageHistogram]
    no_overlap: bool

    def estimate_total(self) -> float:
        """Total matches of the subpattern."""
        return float((self.participation * self.join_factor).sum())

    def weighted(self) -> np.ndarray:
        """Per-cell total matches (participation x join factor)."""
        return self.participation * self.join_factor


class TwigEstimator:
    """Bottom-up twig answer-size estimation over position histograms.

    Parameters
    ----------
    histogram_provider:
        Callable mapping a predicate to its :class:`PositionHistogram`.
    coverage_provider:
        Callable mapping a predicate to its :class:`CoverageHistogram`
        or ``None`` when the predicate lacks the no-overlap property.
    grid_size:
        Side of the (shared) grid, for shaping work arrays.
    zero_hook:
        Optional callable ``(ancestor_predicate, descendant_predicate)
        -> bool`` returning True when schema knowledge guarantees the
        join is empty (paper Section 4's first shortcut); the cascade
        then zeroes that join without touching histograms.
    """

    def __init__(
        self,
        histogram_provider: Callable[[object], PositionHistogram],
        coverage_provider: Callable[[object], Optional[CoverageHistogram]],
        grid_size: int,
        zero_hook: Optional[Callable[[object, object], bool]] = None,
    ) -> None:
        self._histograms = histogram_provider
        self._coverages = coverage_provider
        self._grid_size = grid_size
        self._zero_hook = zero_hook

    # -- public API --------------------------------------------------------

    def estimate(self, pattern: PatternTree) -> EstimationResult:
        """Estimate the number of matches of ``pattern``."""

        def run() -> float:
            state = self._estimate_node(pattern.root)
            return state.estimate_total()

        value, elapsed = time_call(run)
        return EstimationResult(value=value, method="twig", elapsed_seconds=elapsed)

    def root_state(self, pattern: PatternTree) -> SubpatternState:
        """The full root state (participation + join factors), for
        callers that need per-cell output (e.g. the optimizer)."""
        return self._estimate_node(pattern.root)

    # -- cascade -----------------------------------------------------------

    def _leaf_state(self, qnode: PatternNode) -> SubpatternState:
        histogram = self._histograms(qnode.predicate)
        dense = histogram.dense().copy()
        join_factor = np.where(dense > 0, 1.0, 0.0)
        coverage = self._coverages(qnode.predicate)
        return SubpatternState(
            participation=dense,
            join_factor=join_factor,
            coverage=coverage,
            no_overlap=coverage is not None,
        )

    def _estimate_node(self, qnode: PatternNode) -> SubpatternState:
        state = self._leaf_state(qnode)
        for child in qnode.children:
            child_state = self._estimate_node(child)
            state = self._join(state, child_state, qnode.predicate, child.predicate)
        return state

    def _join(
        self,
        ancestor: SubpatternState,
        child: SubpatternState,
        ancestor_predicate: object,
        child_predicate: object,
    ) -> SubpatternState:
        if self._zero_hook is not None and self._zero_hook(
            ancestor_predicate, child_predicate
        ):
            zero = np.zeros((self._grid_size, self._grid_size))
            return SubpatternState(
                participation=zero,
                join_factor=zero.copy(),
                coverage=None,
                no_overlap=ancestor.no_overlap,
            )
        if ancestor.no_overlap and ancestor.coverage is not None:
            return self._join_no_overlap(ancestor, child)
        return self._join_overlap(ancestor, child)

    def _join_overlap(
        self, ancestor: SubpatternState, child: SubpatternState
    ) -> SubpatternState:
        """Primitive pH-join cascade step (Fig. 10 participation case 1).

        Each current partial match at the ancestor is treated as an
        independent point; the estimate histogram becomes the new
        participation and the join factor resets to 1.
        """
        coeff = ancestor_based_coefficients(child.weighted())
        estimate = ancestor.weighted() * coeff
        join_factor = np.where(estimate > 0, 1.0, 0.0)
        return SubpatternState(
            participation=estimate,
            join_factor=join_factor,
            coverage=None,
            no_overlap=False,
        )

    def _join_no_overlap(
        self, ancestor: SubpatternState, child: SubpatternState
    ) -> SubpatternState:
        """No-overlap cascade step (Fig. 10, ancestor-based)."""
        assert ancestor.coverage is not None
        grid_size = self._grid_size
        child_weighted = child.weighted()

        # Pattern count estimate per ancestor cell.
        estimate = np.zeros((grid_size, grid_size))
        for (m, n, i, j), fraction in ancestor.coverage.entries():
            if ancestor.participation[i, j] <= 0:
                continue
            estimate[i, j] += fraction * child_weighted[m, n]
        estimate *= ancestor.join_factor

        # Participation via the occupancy formula: N ancestors in the
        # cell, M participating child nodes in the coverable block.
        participation = np.zeros((grid_size, grid_size))
        child_part = child.participation
        for (i, j), count_n in _nonzero_cells(ancestor.participation):
            block = 0.0
            for m in range(i, j + 1):
                block += child_part[m, m : j + 1].sum()
            if block <= 0 or estimate[i, j] <= 0:
                continue
            participation[i, j] = count_n * (
                1.0 - ((count_n - 1.0) / count_n) ** block
            )

        join_factor = np.zeros((grid_size, grid_size))
        mask = participation > 0
        join_factor[mask] = estimate[mask] / participation[mask]

        coverage = self._propagate_coverage(
            ancestor.coverage, ancestor.participation, participation
        )
        return SubpatternState(
            participation=participation,
            join_factor=join_factor,
            coverage=coverage,
            no_overlap=True,
        )

    @staticmethod
    def _propagate_coverage(
        coverage: CoverageHistogram,
        old_participation: np.ndarray,
        new_participation: np.ndarray,
    ) -> CoverageHistogram:
        """Fig. 10 coverage estimation (case 1): scale each covering
        cell's fractions by that cell's participation ratio."""
        entries: dict[tuple[int, int, int, int], float] = {}
        for (i, j, m, n), fraction in coverage.entries():
            old = old_participation[m, n]
            if old <= 0:
                continue
            scaled = fraction * (new_participation[m, n] / old)
            if scaled > 0:
                entries[(i, j, m, n)] = min(scaled, 1.0)
        return CoverageHistogram(coverage.grid, entries, name=coverage.name)


def _nonzero_cells(matrix: np.ndarray):
    """Yield ((i, j), value) over non-zero cells of a dense matrix."""
    rows, cols = np.nonzero(matrix)
    for i, j in zip(rows.tolist(), cols.tolist()):
        yield (i, j), float(matrix[i, j])
