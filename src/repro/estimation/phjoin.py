"""Primitive pattern estimation and Algorithm pH-Join (paper Figs. 6, 9).

Given position histograms for an ancestor predicate P1 and a descendant
predicate P2, estimate the number of node pairs ``(u, v)`` with ``u``
satisfying P1, ``v`` satisfying P2, and ``u`` an ancestor of ``v``.

Region weights (ancestor-based, paper Fig. 6, anchor cell ``A = (i, j)``
on the ancestor histogram, weights applied to descendant-histogram
cells):

===========================  ======  =======================================
cells                        weight  why
===========================  ======  =======================================
strictly inside the block    1       guaranteed descendants (regions B/E)
(k, l), i < k <= l < j
same column (i, l), i<l<j    1       forbidden-region argument (region E)
same row (k, j), i<k<j       1       forbidden-region argument (region C)
diagonal cell (i, i)         1/2     half the in-cell orderings (region F)
diagonal cell (j, j)         1/2     half the in-cell orderings (region D)
the anchor cell itself       1/4     independent halves in both dimensions
on-diagonal anchor (i, i)    1/12    triangular cell integral
===========================  ======  =======================================

Descendant-based weights (anchor on the descendant histogram, weights on
ancestor-histogram cells): strictly outside ``(m, n), m < i, n > j``,
same column above ``(i, n), n > j`` and same row left ``(m, j), m < i``
all weight 1; anchor cell 1/4 off-diagonal, 1/12 on-diagonal.

Three implementations are provided:

* :func:`ph_join_literal` -- a line-by-line transcription of the
  pseudo-code in the paper's Fig. 9 (ancestor-based, inner operand =
  descendant), kept deliberately close to the original for auditability.
* :func:`ph_join` -- vectorised numpy version of both the ancestor- and
  descendant-based estimators using cumulative sums; this is what the
  rest of the library calls.
* :func:`reference_region_estimate` -- an O(g^4) double loop applying
  the region weights cell by cell; slow, obviously correct, used by the
  test suite to validate the two fast versions.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.estimation.result import EstimationResult
from repro.histograms.position import PositionHistogram
from repro.labeling.regions import Region, region_of
from repro.utils.timing import time_call

#: Region weights for ancestor-based estimation (off-diagonal anchor).
ANCESTOR_REGION_WEIGHTS = {
    Region.SELF: 0.25,
    Region.INSIDE: 1.0,
    Region.SAME_COL_BELOW: 1.0,
    Region.SAME_ROW_RIGHT: 1.0,
    Region.DIAG_LOW: 0.5,
    Region.DIAG_HIGH: 0.5,
}

#: Region weights for descendant-based estimation (off-diagonal anchor).
DESCENDANT_REGION_WEIGHTS = {
    Region.SELF: 0.25,
    Region.OUTSIDE_ANC: 1.0,
    Region.SAME_COL_ABOVE: 1.0,
    Region.SAME_ROW_LEFT: 1.0,
}

ON_DIAGONAL_SELF_WEIGHT = 1.0 / 12.0


def _check_grids(a: PositionHistogram, b: PositionHistogram) -> int:
    if not a.grid.compatible_with(b.grid):
        raise ValueError("histograms were built over different grids")
    return a.grid.size


@lru_cache(maxsize=None)
def _grid_indices(grid_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached ``meshgrid`` row/column index arrays for one grid side.

    The coefficient kernels are called once per (query, operand); the
    index arrays depend only on the grid size, so they are allocated
    once per grid and shared read-only across the whole workload.
    """
    i_idx, j_idx = np.meshgrid(
        np.arange(grid_size), np.arange(grid_size), indexing="ij"
    )
    i_idx.setflags(write=False)
    j_idx.setflags(write=False)
    return i_idx, j_idx


# ---------------------------------------------------------------------------
# Literal transcription of the paper's Fig. 9
# ---------------------------------------------------------------------------


def ph_join_literal(
    hist_a: PositionHistogram, hist_b: PositionHistogram
) -> EstimationResult:
    """Algorithm pH-Join exactly as printed in the paper's Fig. 9.

    ``hist_a`` is the ancestor (outer) operand, ``hist_b`` the
    descendant (inner) operand.  Partial sums over the inner operand:

    * ``self``        -- the cell's own count;
    * ``down``        -- column partial sum: cells in the same start
      column with smaller end bucket, down to the diagonal;
    * ``right``       -- row partial sum: cells in the same end row with
      larger start bucket;
    * ``descendant``  -- region partial sum: cells strictly inside.
    """

    def run() -> tuple[float, np.ndarray]:
        grid_size = _check_grids(hist_a, hist_b)
        hist_a_m = hist_a.dense()
        hist_b_m = hist_b.dense()

        p_self = np.zeros((grid_size, grid_size))
        p_down = np.zeros((grid_size, grid_size))
        p_right = np.zeros((grid_size, grid_size))
        p_desc = np.zeros((grid_size, grid_size))

        # First pass: column partial summations.
        for i in range(grid_size):
            for j in range(i, grid_size):
                p_self[i][j] = hist_b_m[i][j]
                if j == i:
                    p_down[i][j] = 0.0
                elif j == i + 1:
                    p_down[i][j] = p_self[i][j - 1]
                else:
                    p_down[i][j] = p_self[i][j - 1] + p_down[i][j - 1]

        # Second pass: row and region partial summations.
        for j in range(grid_size - 1, -1, -1):
            for i in range(j, -1, -1):
                if i == j:
                    p_right[i][j] = 0.0
                    p_desc[i][j] = 0.0
                elif i == j - 1:
                    p_right[i][j] = p_self[i + 1][j]
                    p_desc[i][j] = p_down[i + 1][j]
                else:
                    p_right[i][j] = p_self[i + 1][j] + p_right[i + 1][j]
                    p_desc[i][j] = p_down[i + 1][j] + p_desc[i + 1][j]

        # Third pass: combine with the outer operand.
        result_hist = np.zeros((grid_size, grid_size))
        total = 0.0
        for i in range(grid_size):
            for j in range(i, grid_size):
                if i == j:
                    result_hist[i][j] = hist_a_m[i][j] * p_self[i][j] / 12.0
                else:
                    result_hist[i][j] = hist_a_m[i][j] * max(
                        p_desc[i][j]
                        + p_self[i][j] / 4.0
                        + p_down[i][j]
                        - p_self[i][i] / 2.0
                        + p_right[i][j]
                        - p_self[j][j] / 2.0,
                        0.0,
                    )
                total += result_hist[i][j]
        return total, result_hist

    (total, result_hist), elapsed = time_call(run)
    return EstimationResult(
        value=total,
        method="ph-join-literal",
        elapsed_seconds=elapsed,
        per_cell=result_hist,
    )


# ---------------------------------------------------------------------------
# Vectorised pH-join
# ---------------------------------------------------------------------------


def ancestor_based_coefficients(hist_desc: np.ndarray) -> np.ndarray:
    """Per-ancestor-cell multiplicative coefficients (vectorised).

    ``coeff[i, j]`` is the expected number of descendant-histogram nodes
    joining with one ancestor point in cell ``(i, j)``.  The paper notes
    these coefficients depend only on the inner (descendant) operand and
    can be precomputed -- this function is exactly that precomputation.
    """
    grid_size = hist_desc.shape[0]
    diag = np.diag(hist_desc)

    # R[k, l] = sum_{l' <= l} H[k, l']  (row prefix sums).
    row_prefix = np.cumsum(hist_desc, axis=1)
    # CR[k, l] = sum_{k' <= k} R[k', l]  (column prefix of row prefixes).
    col_of_row_prefix = np.cumsum(row_prefix, axis=0)
    # Ccol[k, j] = sum_{k' <= k} H[k', j]  (column prefix sums).
    col_prefix = np.cumsum(hist_desc, axis=0)

    i_idx, j_idx = _grid_indices(grid_size)

    coeff = np.zeros((grid_size, grid_size))
    off = j_idx > i_idx  # off-diagonal upper cells

    # Guard j-1 >= 0: wherever off is True, j >= 1.
    jm1 = np.maximum(j_idx - 1, 0)

    # Strictly-inside block: sum_{k=i+1..j} R[k, j-1]
    inside = col_of_row_prefix[j_idx, jm1] - col_of_row_prefix[i_idx, jm1]
    # Same-column partial sum: sum_{l=i..j-1} H[i, l]  (H zero below diag).
    down = row_prefix[i_idx, jm1]
    # Same-row partial sum: sum_{k=i+1..j} H[k, j].
    right = col_prefix[j_idx, j_idx] - col_prefix[i_idx, j_idx]

    coeff_off = (
        inside
        + 0.25 * hist_desc[i_idx, j_idx]
        + down
        - 0.5 * diag[i_idx]
        + right
        - 0.5 * diag[j_idx]
    )
    coeff[off] = coeff_off[off]
    coeff[np.arange(grid_size), np.arange(grid_size)] = diag * ON_DIAGONAL_SELF_WEIGHT
    # The algebra is non-negative; cumulative-sum cancellation can leave
    # infinitesimal negatives, which we clamp away.
    np.maximum(coeff, 0.0, out=coeff)
    return coeff


def descendant_based_coefficients(hist_anc: np.ndarray) -> np.ndarray:
    """Per-descendant-cell coefficients: expected ancestors per point."""
    grid_size = hist_anc.shape[0]

    # P[a, b] = sum_{m <= a, n <= b} H[m, n]  (2-D prefix sums).
    prefix2d = np.cumsum(np.cumsum(hist_anc, axis=0), axis=1)
    row_prefix = np.cumsum(hist_anc, axis=1)
    row_total = row_prefix[:, -1]
    cum_row_total = np.cumsum(row_total)

    i_idx, j_idx = _grid_indices(grid_size)

    # sum over m < i, all n:  cum_row_total[i-1]
    above_all = np.where(i_idx > 0, cum_row_total[np.maximum(i_idx - 1, 0)], 0.0)
    # P[i-1, j]: mass with m < i and n <= j.
    above_upto_j = np.where(i_idx > 0, prefix2d[np.maximum(i_idx - 1, 0), j_idx], 0.0)
    # Strictly outside: m < i and n > j.
    outside = above_all - above_upto_j
    # Same column above: (i, n), n > j.
    same_col_above = row_total[i_idx] - row_prefix[i_idx, j_idx]
    # Same row left: (m, j), m < i.
    jm1 = np.maximum(j_idx - 1, 0)
    col_upto = prefix2d[np.maximum(i_idx - 1, 0), j_idx] - np.where(
        j_idx > 0, prefix2d[np.maximum(i_idx - 1, 0), jm1], 0.0
    )
    same_row_left = np.where(i_idx > 0, col_upto, 0.0)

    self_weight = np.where(i_idx == j_idx, ON_DIAGONAL_SELF_WEIGHT, 0.25)
    coeff = outside + same_col_above + same_row_left + self_weight * hist_anc[i_idx, j_idx]
    # Zero out the unpopulated lower triangle for cleanliness.
    coeff[j_idx < i_idx] = 0.0
    # Clamp away infinitesimal negatives from prefix-sum cancellation.
    np.maximum(coeff, 0.0, out=coeff)
    return coeff


def ph_join(
    hist_ancestor: PositionHistogram,
    hist_descendant: PositionHistogram,
    based: str = "ancestor",
) -> EstimationResult:
    """Vectorised pH-join estimate of ``|{(u, v) : u anc-of v}|``.

    Parameters
    ----------
    hist_ancestor, hist_descendant:
        Position histograms of the two predicates, same grid.
    based:
        ``"ancestor"`` anchors the estimate on ancestor cells (the
        per-cell output is indexed by ancestor cell); ``"descendant"``
        anchors on descendant cells.  Both estimate the same quantity
        and agree exactly on totals for guaranteed regions, differing
        only in how boundary cells are apportioned.
    """
    if based not in ("ancestor", "descendant"):
        raise ValueError(f"based must be 'ancestor' or 'descendant', got {based!r}")
    _check_grids(hist_ancestor, hist_descendant)

    def run() -> tuple[float, np.ndarray]:
        if based == "ancestor":
            coeff = ancestor_based_coefficients(hist_descendant.dense())
            per_cell = hist_ancestor.dense() * coeff
        else:
            coeff = descendant_based_coefficients(hist_ancestor.dense())
            per_cell = hist_descendant.dense() * coeff
        return float(per_cell.sum()), per_cell

    (total, per_cell), elapsed = time_call(run)
    return EstimationResult(
        value=total,
        method=f"ph-join/{based}",
        elapsed_seconds=elapsed,
        per_cell=per_cell,
    )


# ---------------------------------------------------------------------------
# First-principles reference (for tests and the naive-loop ablation)
# ---------------------------------------------------------------------------


def reference_region_estimate(
    hist_ancestor: PositionHistogram,
    hist_descendant: PositionHistogram,
    based: str = "ancestor",
) -> EstimationResult:
    """O(g^4) direct application of the region weights.

    Loops over every pair of populated cells, classifies the pair with
    :func:`repro.labeling.regions.region_of`, and applies the Fig. 6
    weights.  Used to validate :func:`ph_join` and
    :func:`ph_join_literal`, and as the "simple nested loop algorithm"
    baseline in the estimation-time ablation.
    """
    if based not in ("ancestor", "descendant"):
        raise ValueError(f"based must be 'ancestor' or 'descendant', got {based!r}")
    grid_size = _check_grids(hist_ancestor, hist_descendant)

    def run() -> tuple[float, np.ndarray]:
        per_cell = np.zeros((grid_size, grid_size))
        if based == "ancestor":
            for (i, j), count_a in hist_ancestor.cells():
                if i == j:
                    per_cell[i, j] = (
                        count_a * hist_descendant.count(i, i) * ON_DIAGONAL_SELF_WEIGHT
                    )
                    continue
                acc = 0.0
                for (k, l), count_b in hist_descendant.cells():
                    region = region_of(i, j, k, l)
                    weight = ANCESTOR_REGION_WEIGHTS.get(region, 0.0)
                    acc += weight * count_b
                per_cell[i, j] = count_a * acc
        else:
            for (i, j), count_b in hist_descendant.cells():
                acc = 0.0
                for (m, n), count_a in hist_ancestor.cells():
                    region = region_of(i, j, m, n)
                    if region is Region.SELF:
                        weight = (
                            ON_DIAGONAL_SELF_WEIGHT if i == j else 0.25
                        )
                    else:
                        weight = DESCENDANT_REGION_WEIGHTS.get(region, 0.0)
                    acc += weight * count_a
                per_cell[i, j] = count_b * acc
        return float(per_cell.sum()), per_cell

    (total, per_cell), elapsed = time_call(run)
    return EstimationResult(
        value=total,
        method=f"reference/{based}",
        elapsed_seconds=elapsed,
        per_cell=per_cell,
    )
