"""Level-aware pH-join: parent-child and level-refined estimation.

Extends the primitive pH-join (paper Figs. 6/9) with the level
dimension of :class:`~repro.histograms.levels.LevelPositionHistogram`:

* :func:`ph_join_parent_child` -- estimate ``|P1 / P2|`` (parent-child
  pairs): for each ancestor level ``l``, apply the ancestor-based
  region coefficients against only the descendants at level ``l + 1``.
* :func:`ph_join_level_refined` -- estimate ``|P1 // P2|`` but restrict
  each ancestor level's candidates to descendants at strictly greater
  levels, removing a bias of the plain estimator (same-cell nodes at
  equal or smaller levels can never be descendants).

Both run in ``O(L * g)`` over the sparse cells, where ``L`` is the
number of distinct populated levels -- small for real documents.
"""

from __future__ import annotations

from repro.estimation.phjoin import ancestor_based_coefficients
from repro.estimation.result import EstimationResult
from repro.histograms.levels import LevelPositionHistogram
from repro.utils.timing import time_call


def _check_grids(a: LevelPositionHistogram, b: LevelPositionHistogram) -> None:
    if not a.grid.compatible_with(b.grid):
        raise ValueError("histograms were built over different grids")


def ph_join_parent_child(
    hist_ancestor: LevelPositionHistogram,
    hist_descendant: LevelPositionHistogram,
) -> EstimationResult:
    """Estimate the number of (parent, child) pairs between predicates.

    A child sits exactly one level below its parent, and within the
    parent's interval; the per-level slice of the descendant histogram
    feeds the standard region coefficients.
    """
    _check_grids(hist_ancestor, hist_descendant)

    def run() -> float:
        total = 0.0
        descendant_levels = set(hist_descendant.levels())
        for level in hist_ancestor.levels():
            if (level + 1) not in descendant_levels:
                continue
            anc_matrix = hist_ancestor.dense_level(level)
            desc_matrix = hist_descendant.dense_level(level + 1)
            coeff = ancestor_based_coefficients(desc_matrix)
            total += float((anc_matrix * coeff).sum())
        return total

    value, elapsed = time_call(run)
    return EstimationResult(
        value=value, method="ph-join-child", elapsed_seconds=elapsed
    )


def ph_join_level_refined(
    hist_ancestor: LevelPositionHistogram,
    hist_descendant: LevelPositionHistogram,
) -> EstimationResult:
    """Estimate ``|P1 // P2|`` with the level restriction applied.

    Identical to the primitive ancestor-based pH-join except that, for
    ancestor nodes at level ``l``, only descendant-histogram mass at
    levels ``> l`` is eligible.  For flat data (each predicate at one
    level) this coincides with the plain estimator whenever the
    descendant predicate sits strictly deeper, and fixes the self-pair
    bias when predicates share levels.
    """
    _check_grids(hist_ancestor, hist_descendant)

    def run() -> float:
        total = 0.0
        for level in hist_ancestor.levels():
            anc_matrix = hist_ancestor.dense_level(level)
            desc_matrix = hist_descendant.dense_levels_at_least(level + 1)
            coeff = ancestor_based_coefficients(desc_matrix)
            total += float((anc_matrix * coeff).sum())
        return total

    value, elapsed = time_call(run)
    return EstimationResult(
        value=value, method="ph-join-level", elapsed_seconds=elapsed
    )
