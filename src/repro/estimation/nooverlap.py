"""No-overlap estimation (paper Section 4, Fig. 10).

When the ancestor predicate P1 of a primitive pattern has the no-overlap
property (Definition 2), each descendant joins with at most one P1 node,
and the uniformity assumption of the primitive pH-join systematically
overestimates.  The coverage histogram fixes this: within each covered
cell, the fraction of *all* nodes that sit under some P1-node of a given
covering cell is known exactly, and that fraction is assumed to apply to
the P2 nodes of the cell.

This module implements, for a primitive two-node pattern:

* :func:`no_overlap_estimate` -- the ancestor-based pattern count
  estimate (first formula of Fig. 10, with join factors defaulting to 1
  for base predicates);
* :func:`participation_ancestor` -- how many P1 nodes participate in
  the join (case 2 of Fig. 10's participation estimation: the occupancy
  formula ``N * (1 - ((N-1)/N)^M)``);
* :func:`participation_descendant` -- how many P2 nodes participate
  (case 3: descendant-based, summing coverage over populated ancestor
  cells);
* :func:`join_factor` -- ``Est / Hist`` per cell (Fig. 10's
  ``Jn_Fct``).

The cascaded versions threading these through multi-node twigs live in
:mod:`repro.estimation.twig`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.estimation.result import EstimationResult
from repro.histograms.coverage import CoverageHistogram
from repro.histograms.position import PositionHistogram
from repro.utils.timing import time_call


def no_overlap_estimate(
    hist_ancestor: PositionHistogram,
    coverage_ancestor: CoverageHistogram,
    hist_descendant: PositionHistogram,
    ancestor_join_factor: Optional[np.ndarray] = None,
    descendant_join_factor: Optional[np.ndarray] = None,
) -> EstimationResult:
    """Ancestor-based pattern count estimate for a no-overlap ancestor.

    Implements Fig. 10's::

        Est_AB[i][j] = Jn_Fct_A[i][j]
                       * sum_{m=i..j, n=m..j} Cvg_A[m][n][i][j]
                                              * Hist_B[m][n]
                                              * Jn_Fct_B[m][n]

    For a primitive pattern both join factors are 1 (``None``).  The
    per-cell output is indexed by the ancestor cell ``(i, j)``.
    """
    if not hist_ancestor.grid.compatible_with(hist_descendant.grid):
        raise ValueError("histograms were built over different grids")
    if not hist_ancestor.grid.compatible_with(coverage_ancestor.grid):
        raise ValueError("coverage histogram grid differs from position grids")
    grid_size = hist_ancestor.grid.size

    def run() -> tuple[float, np.ndarray]:
        per_cell = np.zeros((grid_size, grid_size))
        # Columns: covered cell (m, n), covering ancestor cell (i, j).
        m, n, i, j, fractions = coverage_ancestor.entry_arrays()
        if fractions.size:
            contributions = fractions * hist_descendant.dense()[m, n]
            if descendant_join_factor is not None:
                contributions = contributions * descendant_join_factor[m, n]
            # Participating ancestors may be fewer than the original
            # predicate's nodes in a cascade; unpopulated covering cells
            # contribute nothing.
            contributions = np.where(
                hist_ancestor.dense()[i, j] > 0, contributions, 0.0
            )
            np.add.at(per_cell, (i, j), contributions)
        if ancestor_join_factor is not None:
            per_cell *= ancestor_join_factor
        return float(per_cell.sum()), per_cell

    (total, per_cell), elapsed = time_call(run)
    return EstimationResult(
        value=total,
        method="no-overlap",
        elapsed_seconds=elapsed,
        per_cell=per_cell,
    )


def participation_ancestor(
    hist_ancestor: PositionHistogram,
    hist_descendant: PositionHistogram,
    descendant_join_factor: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Participation estimate for a no-overlap ancestor (Fig. 10 case 2).

    For each ancestor cell, ``N`` ancestors compete for ``M`` descendant
    "balls" (the descendants lying in the cells the ancestor block can
    cover); the expected number of ancestors hit at least once is the
    occupancy formula ``N * (1 - ((N-1)/N)^M)``.
    """
    grid_size = hist_ancestor.grid.size
    desc = hist_descendant.dense()
    if descendant_join_factor is not None:
        desc = desc * np.where(descendant_join_factor > 0, 1.0, 0.0)
    # M[i, j] = descendants in the block {(m, n) : i <= m <= n <= j}.
    participation = np.zeros((grid_size, grid_size))
    for (i, j), count_n in hist_ancestor.cells():
        block = 0.0
        for m in range(i, j + 1):
            block += desc[m, m : j + 1].sum()
        if count_n <= 0 or block <= 0:
            continue
        # The occupancy formula handles N == 1 too: ((N-1)/N)^M = 0.
        participation[i, j] = count_n * (
            1.0 - ((count_n - 1.0) / count_n) ** block
        )
    return participation


def participation_descendant(
    hist_descendant: PositionHistogram,
    hist_ancestor: PositionHistogram,
    coverage_ancestor: CoverageHistogram,
    descendant_join_factor: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Participation estimate based on the descendant (Fig. 10 case 3).

    ``Hist_AB_P2[i][j] = Hist_B_P2[i][j] * sum_{(m, n)} notzero(Hist_A[m][n])
    * Cvg_A[i][j][m][n]`` -- the fraction of the cell's descendants lying
    under some populated ancestor cell.
    """
    grid_size = hist_descendant.grid.size
    participation = np.zeros((grid_size, grid_size))
    for (i, j, m, n), fraction in coverage_ancestor.entries():
        if hist_ancestor.count(m, n) > 0:
            participation[i, j] += fraction
    # The summed coverage is a fraction of the cell population; clamp to 1
    # (distinct covering cells cover disjoint node subsets for a
    # no-overlap predicate, but numeric noise can push past 1).
    np.clip(participation, 0.0, 1.0, out=participation)
    out = np.zeros((grid_size, grid_size))
    for (i, j), count in hist_descendant.cells():
        out[i, j] = count * participation[i, j]
        if descendant_join_factor is not None and descendant_join_factor[i, j] == 0:
            out[i, j] = 0.0
    return out


def join_factor(
    estimate_per_cell: np.ndarray, participation: np.ndarray
) -> np.ndarray:
    """Fig. 10's join factor: ``Est / Hist`` where participation > 0."""
    factor = np.zeros_like(estimate_per_cell)
    mask = participation > 0
    factor[mask] = estimate_per_cell[mask] / participation[mask]
    return factor


def propagate_coverage(
    coverage: CoverageHistogram,
    participation: np.ndarray,
    original_hist: PositionHistogram,
) -> CoverageHistogram:
    """Re-weight coverage after a join (Fig. 10 coverage estimation,
    case 1): participating ancestors are a subset of the original
    predicate's nodes, so each covering cell's fractions shrink by the
    participation ratio of that cell."""
    entries: dict[tuple[int, int, int, int], float] = {}
    for (i, j, m, n), fraction in coverage.entries():
        original = original_hist.count(m, n)
        if original <= 0:
            continue
        ratio = participation[m, n] / original
        scaled = fraction * ratio
        if scaled > 0:
            entries[(i, j, m, n)] = min(scaled, 1.0)
    return CoverageHistogram(coverage.grid, entries, name=coverage.name)
