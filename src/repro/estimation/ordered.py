"""Ordered-semantics estimation (paper future-work extension).

The paper's conclusion mentions "estimation for queries with ordered
semantics" as tech-report material.  With interval labels, document
order is start order and two nodes are order-comparable-and-disjoint
exactly when one interval ends before the other begins, so position
histograms support a *following* estimator with the same region-weight
machinery as the pH-join:

For an anchor cell ``A = (i, j)`` of the *preceding* node ``u`` (end
bucket ``j``), a node ``v`` follows ``u`` iff ``u.end < v.start``:

* cells ``(k, l)`` with ``k > j`` -- every start in bucket ``k``
  exceeds every end in bucket ``j``: weight 1;
* cells ``(j, l)`` -- ``u.end`` and ``v.start`` share bucket ``j``:
  under in-cell uniformity, weight 1/2;
* cells ``(k, l)`` with ``k < j`` -- ``v.start`` cannot exceed
  ``u.end``'s bucket floor: weight 0.

``preceding`` is the mirror image.  Exact counters for ground truth are
provided alongside.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.result import EstimationResult
from repro.histograms.position import PositionHistogram
from repro.labeling.interval import LabeledTree
from repro.utils.timing import time_call


def following_coefficients(hist_following: np.ndarray) -> np.ndarray:
    """Per-anchor-cell expected following-node counts.

    ``coeff[i, j]`` multiplies the count of *preceding* nodes in cell
    ``(i, j)``; it depends only on the following operand, mirroring the
    pH-join precomputation property.
    """
    grid_size = hist_following.shape[0]
    # column_mass[k] = total following-histogram mass with start bucket k.
    column_mass = hist_following.sum(axis=1)
    suffix = np.concatenate([np.cumsum(column_mass[::-1])[::-1], [0.0]])
    coeff = np.zeros((grid_size, grid_size))
    for j in range(grid_size):
        # Anchor end bucket j: full weight for start buckets > j, half
        # weight for start bucket j.
        value = suffix[j + 1] + 0.5 * column_mass[j]
        coeff[: j + 1, j] = value
    return coeff


def ph_join_following(
    hist_before: PositionHistogram, hist_after: PositionHistogram
) -> EstimationResult:
    """Estimate ``|{(u, v) : u entirely precedes v}|``.

    ``hist_before`` summarises the predicate required to come first in
    document order, ``hist_after`` the one required to follow.
    """
    if not hist_before.grid.compatible_with(hist_after.grid):
        raise ValueError("histograms were built over different grids")

    def run() -> tuple[float, np.ndarray]:
        coeff = following_coefficients(hist_after.dense())
        per_cell = hist_before.dense() * coeff
        return float(per_cell.sum()), per_cell

    (value, per_cell), elapsed = time_call(run)
    return EstimationResult(
        value=value, method="following", elapsed_seconds=elapsed, per_cell=per_cell
    )


def ph_join_preceding(
    hist_anchor: PositionHistogram, hist_preceding: PositionHistogram
) -> EstimationResult:
    """Estimate ``|{(u, v) : v entirely precedes u}|`` -- the mirror."""
    result = ph_join_following(hist_preceding, hist_anchor)
    return EstimationResult(
        value=result.value,
        method="preceding",
        elapsed_seconds=result.elapsed_seconds,
        per_cell=result.per_cell,
    )


def count_following_pairs(
    tree: LabeledTree, before_indices: np.ndarray, after_indices: np.ndarray
) -> int:
    """Exact count of (u, v) pairs with ``u.end < v.start``.

    One sort plus a binary search per u: ``O((m + n) log n)``.
    """
    before = np.asarray(before_indices, dtype=np.int64)
    after = np.asarray(after_indices, dtype=np.int64)
    if len(before) == 0 or len(after) == 0:
        return 0
    after_starts = np.sort(tree.start[after])
    ends = tree.end[before]
    positions = np.searchsorted(after_starts, ends, side="right")
    return int((len(after_starts) - positions).sum())
