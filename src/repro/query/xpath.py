"""A mini-XPath parser producing :class:`~repro.query.pattern.PatternTree`.

Supports the fragment needed to express the paper's queries (and the
XQuery example of its introduction):

* ``//a//b`` and ``//a/b`` -- descendant and child steps;
* ``*`` -- any element (the TRUE predicate);
* branching qualifiers: ``//department/faculty[.//TA][.//RA]``;
* content qualifiers on a step:
  ``//year[text()="1995"]``, ``//cite[starts-with(text(), "conf")]``,
  ``//cite[ends-with(text(), "99")]``.

The grammar (recursive descent)::

    xpath     := ('//' | '/') step ( ('//' | '/') step )*
    step      := nodetest qualifier*
    nodetest  := NAME | '*'
    qualifier := '[' ( relpath | content ) ']'
    relpath   := ('.//' | './') step ( ('//' | '/') step )*
    content   := 'text()' '=' STRING
               | 'starts-with' '(' 'text()' ',' STRING ')'
               | 'ends-with' '(' 'text()' ',' STRING ')'
"""

from __future__ import annotations

from repro.predicates.base import (
    ContentEqualsPredicate,
    ContentPrefixPredicate,
    ContentSuffixPredicate,
    Predicate,
    TagPredicate,
    TruePredicate,
)
from repro.predicates.boolean import AndPredicate
from repro.query.pattern import Axis, PatternNode, PatternTree


class XPathSyntaxError(ValueError):
    """Raised on malformed mini-XPath input."""


class _Scanner:
    """Character-level scanner with a tiny lookahead API."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def looking_at(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> bool:
        if self.looking_at(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise XPathSyntaxError(
                f"expected {literal!r} at position {self.pos} in {self.text!r}"
            )

    def skip_spaces(self) -> None:
        while not self.eof() and self.text[self.pos] in " \t":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while not self.eof():
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_-.:":
                self.pos += 1
            else:
                break
        if self.pos == start:
            raise XPathSyntaxError(
                f"expected a name at position {start} in {self.text!r}"
            )
        return self.text[start : self.pos]

    def read_string(self) -> str:
        quote = self.text[self.pos] if not self.eof() else ""
        if quote not in ("'", '"'):
            raise XPathSyntaxError(
                f"expected a quoted string at position {self.pos}"
            )
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise XPathSyntaxError("unterminated string literal")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value


def parse_xpath(expression: str) -> PatternTree:
    """Parse a mini-XPath expression into a pattern tree."""
    scanner = _Scanner(expression.strip())
    if scanner.take("//"):
        axis = Axis.DESCENDANT
    elif scanner.take("/"):
        axis = Axis.CHILD
    else:
        raise XPathSyntaxError("an XPath must start with '/' or '//'")
    root = _parse_step(scanner, axis)
    node = root
    while not scanner.eof():
        node = _parse_next_step(scanner, node)
    return PatternTree(root)


def _parse_next_step(scanner: _Scanner, parent: PatternNode) -> PatternNode:
    if scanner.take("//"):
        axis = Axis.DESCENDANT
    elif scanner.take("/"):
        axis = Axis.CHILD
    else:
        raise XPathSyntaxError(
            f"unexpected input at position {scanner.pos} in {scanner.text!r}"
        )
    step = _parse_step(scanner, axis)
    parent.attach(step)
    return step


def _parse_step(scanner: _Scanner, axis: Axis) -> PatternNode:
    scanner.skip_spaces()
    if scanner.take("*"):
        predicate: Predicate = TruePredicate()
        tag = None
    else:
        tag = scanner.read_name()
        predicate = TagPredicate(tag)
    node = PatternNode(predicate, axis)
    while scanner.looking_at("["):
        _parse_qualifier(scanner, node, tag)
    return node


def _parse_qualifier(scanner: _Scanner, node: PatternNode, tag: str | None) -> None:
    scanner.expect("[")
    scanner.skip_spaces()
    if scanner.looking_at("text()"):
        scanner.expect("text()")
        scanner.skip_spaces()
        scanner.expect("=")
        scanner.skip_spaces()
        value = scanner.read_string()
        _conjoin(node, ContentEqualsPredicate(value, tag=tag))
    elif scanner.looking_at("starts-with"):
        scanner.expect("starts-with")
        _parse_text_function_args(scanner, node, tag, ContentPrefixPredicate)
    elif scanner.looking_at("ends-with"):
        scanner.expect("ends-with")
        _parse_text_function_args(scanner, node, tag, ContentSuffixPredicate)
    else:
        # A relative-path qualifier: a branch of the twig.
        if scanner.take(".//"):
            axis = Axis.DESCENDANT
        elif scanner.take("./"):
            axis = Axis.CHILD
        else:
            # Bare name defaults to the child axis, as in XPath.
            axis = Axis.CHILD
        branch = _parse_step(scanner, axis)
        inner = branch
        while not scanner.looking_at("]"):
            inner = _parse_next_step(scanner, inner)
        node.attach(branch)
    scanner.skip_spaces()
    scanner.expect("]")


def _parse_text_function_args(
    scanner: _Scanner, node: PatternNode, tag: str | None, predicate_cls: type
) -> None:
    scanner.skip_spaces()
    scanner.expect("(")
    scanner.skip_spaces()
    scanner.expect("text()")
    scanner.skip_spaces()
    scanner.expect(",")
    scanner.skip_spaces()
    value = scanner.read_string()
    scanner.skip_spaces()
    scanner.expect(")")
    _conjoin(node, predicate_cls(value, tag=tag))


def _conjoin(node: PatternNode, extra: Predicate) -> None:
    """And a content predicate into a step's node predicate."""
    if isinstance(node.predicate, TruePredicate):
        node.predicate = extra
    else:
        node.predicate = AndPredicate(node.predicate, extra)
