"""Exact twig match counting -- the "Real Result" ground truth.

A match of a pattern tree Q in the data tree T is a total mapping from
query nodes to data nodes respecting predicates and edge axes (paper
Section 2).  The number of matches factorises over the query tree::

    f_q(v) = [pred_q(v)] * prod_{c child of q} S_c(v)

    S_c(v) = sum over proper descendants w of v of f_c(w)   (// axis)
    S_c(v) = sum over children w of v of f_c(w)             (/  axis)

    answer = sum_v f_root(v)

Both aggregations are vectorised over the pre-order arrays of the
labeled tree: descendant sums are prefix-sum differences over the
pre-order interval of each subtree, child sums are a scatter-add over
``parent_index``.  Total cost is ``O(|Q| * |T|)``.
"""

from __future__ import annotations

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.predicates.base import Predicate
from repro.query.pattern import Axis, PatternNode, PatternTree


def _predicate_mask(tree: LabeledTree, predicate: Predicate) -> np.ndarray:
    return np.fromiter(
        (predicate.matches(e) for e in tree.elements),
        dtype=np.float64,
        count=len(tree),
    )


def _subtree_high(tree: LabeledTree) -> np.ndarray:
    """For each node v, the pre-order index one past v's last descendant."""
    return np.searchsorted(tree.start, tree.end)


def count_matches(tree: LabeledTree, pattern: PatternTree) -> int:
    """Exact number of matches of ``pattern`` in ``tree``."""
    high = _subtree_high(tree)
    node_count = len(tree)
    scores: dict[int, np.ndarray] = {}

    for qnode in pattern.root.post_order():
        f = _predicate_mask(tree, qnode.predicate)
        for child in qnode.children:
            child_f = scores.pop(id(child))
            if child.axis is Axis.DESCENDANT:
                prefix = np.concatenate(([0.0], np.cumsum(child_f)))
                # Descendants of v occupy pre-order slots (v, high[v]).
                s = prefix[high] - prefix[np.arange(node_count) + 1]
            else:
                s = np.zeros(node_count)
                parents = tree.parent_index
                has_parent = parents >= 0
                np.add.at(s, parents[has_parent], child_f[has_parent])
            f = f * s
        scores[id(qnode)] = f

    return int(round(float(scores[id(pattern.root)].sum())))


def count_pairs(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> int:
    """Exact count of (ancestor, descendant) pairs between two node sets.

    This is the primitive two-node pattern; used directly for the paper's
    Tables 2 and 4 "Real Result" columns.  Implemented with prefix sums
    over the descendant indicator, ``O(|T|)`` after the mask scatter.
    """
    node_count = len(tree)
    descendant_mask = np.zeros(node_count)
    descendant_mask[np.asarray(descendant_indices, dtype=np.int64)] = 1.0
    if axis is Axis.DESCENDANT:
        high = _subtree_high(tree)
        prefix = np.concatenate(([0.0], np.cumsum(descendant_mask)))
        anc = np.asarray(ancestor_indices, dtype=np.int64)
        per_ancestor = prefix[high[anc]] - prefix[anc + 1]
        return int(round(float(per_ancestor.sum())))
    # Parent-child: count descendant nodes whose parent is an ancestor node.
    ancestor_set = np.zeros(node_count, dtype=bool)
    ancestor_set[np.asarray(ancestor_indices, dtype=np.int64)] = True
    desc = np.asarray(descendant_indices, dtype=np.int64)
    parents = tree.parent_index[desc]
    valid = parents >= 0
    return int(np.count_nonzero(ancestor_set[parents[valid]]))


def match_bindings(
    tree: LabeledTree, pattern: PatternTree, limit: int = 1000
) -> list[dict[str, int]]:
    """Enumerate up to ``limit`` full match bindings (query node xpath
    label -> data node index).

    Exponential in the worst case -- intended for tests on small
    documents, where inspecting actual matches beats trusting a count.
    """
    qnodes = pattern.nodes()
    labels = {id(q): f"{i}:{q.predicate.name}" for i, q in enumerate(qnodes)}
    out: list[dict[str, int]] = []

    candidates: dict[int, list[int]] = {}
    for q in qnodes:
        candidates[id(q)] = [
            v for v, e in enumerate(tree.elements) if q.predicate.matches(e)
        ]

    def compatible(q: PatternNode, v: int, binding: dict[int, int]) -> bool:
        if q.parent is None:
            return True
        u = binding[id(q.parent)]
        if q.axis is Axis.DESCENDANT:
            return tree.is_ancestor(u, v)
        return int(tree.parent_index[v]) == u

    def extend(index: int, binding: dict[int, int]) -> None:
        if len(out) >= limit:
            return
        if index == len(qnodes):
            out.append({labels[qid]: v for qid, v in binding.items()})
            return
        q = qnodes[index]
        for v in candidates[id(q)]:
            if compatible(q, v, binding):
                binding[id(q)] = v
                extend(index + 1, binding)
                del binding[id(q)]

    extend(0, {})
    return out
