"""Stack-based structural join (the physical operator under the plans).

The paper motivates estimation with optimizer choices between join
orders and join algorithms in TIMBER.  This module supplies the actual
join operator: a single-pass merge over two node lists sorted by start
position, maintaining a stack of open ancestors -- the classic
stack-tree algorithm.  It produces exact (ancestor, descendant) pair
counts or the pairs themselves, and is what
:mod:`repro.optimizer` schedules when executing a chosen plan.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.query.pattern import Axis


def stack_tree_join(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> int:
    """Count joining pairs with one merge pass (stack-tree count).

    Both input lists must be sorted by pre-order index (the catalog
    produces them that way).  ``O(|A| + |D| + output-free counting)``:
    each descendant contributes the current ancestor-stack depth, so no
    pairs are materialised.
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    start, end = tree.start, tree.end
    parent_of = tree.parent_index

    total = 0
    stack: list[int] = []  # open ancestor indices (nested)
    ai = 0
    for d in desc:
        d_start = int(start[d])
        # Push ancestors that start before this descendant.
        while ai < len(anc) and int(start[anc[ai]]) < d_start:
            a = int(anc[ai])
            while stack and int(end[stack[-1]]) < int(start[a]):
                stack.pop()
            stack.append(a)
            ai += 1
        # Pop ancestors already closed.
        while stack and int(end[stack[-1]]) < d_start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            total += len(stack)
        else:
            if stack and int(parent_of[d]) == stack[-1]:
                total += 1
    return total


def structural_join_pairs(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> Iterator[tuple[int, int]]:
    """Yield the joining (ancestor, descendant) index pairs.

    Same sweep as :func:`stack_tree_join` but materialising output;
    used in tests and by the example applications that display matches.
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    start, end = tree.start, tree.end
    parent_of = tree.parent_index

    stack: list[int] = []
    ai = 0
    for d in desc:
        d_start = int(start[d])
        while ai < len(anc) and int(start[anc[ai]]) < d_start:
            a = int(anc[ai])
            while stack and int(end[stack[-1]]) < int(start[a]):
                stack.pop()
            stack.append(a)
            ai += 1
        while stack and int(end[stack[-1]]) < d_start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            for a in stack:
                yield (a, int(d))
        else:
            if stack and int(parent_of[d]) == stack[-1]:
                yield (stack[-1], int(d))


def nested_loop_join_count(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
) -> int:
    """Quadratic reference join used only to validate the merge join."""
    total = 0
    for a in np.asarray(ancestor_indices, dtype=np.int64):
        for d in np.asarray(descendant_indices, dtype=np.int64):
            if tree.is_ancestor(int(a), int(d)):
                total += 1
    return total
