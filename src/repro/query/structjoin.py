"""Structural joins (the physical operators under the plans).

The paper motivates estimation with optimizer choices between join
orders and join algorithms in TIMBER.  This module supplies the actual
join operators:

* :func:`stack_tree_join` / :func:`structural_join_pairs` -- a
  single-pass merge over two node lists sorted by start position,
  maintaining a stack of open ancestors (the classic stack-tree
  algorithm).  Per-element Python loops; kept as the correctness
  reference.
* :func:`vectorized_join_count` / :func:`vectorized_join_pairs` -- the
  columnar versions: pre-order contiguity of subtrees turns the interval
  join into two ``searchsorted`` calls per operand plus a
  ``repeat``/prefix-sum expansion, producing whole pair *arrays* with no
  per-pair Python work.  These are what :class:`~repro.engine.executor.
  PlanExecutor` schedules when executing a chosen plan.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.labeling.interval import LabeledTree
from repro.query.pattern import Axis
from repro.utils.arrays import expand_ranges


def stack_tree_join(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> int:
    """Count joining pairs with one merge pass (stack-tree count).

    Both input lists must be sorted by pre-order index (the catalog
    produces them that way).  ``O(|A| + |D| + output-free counting)``:
    each descendant contributes the current ancestor-stack depth, so no
    pairs are materialised.
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    start, end = tree.start, tree.end
    parent_of = tree.parent_index

    total = 0
    stack: list[int] = []  # open ancestor indices (nested)
    ai = 0
    for d in desc:
        d_start = int(start[d])
        # Push ancestors that start before this descendant.
        while ai < len(anc) and int(start[anc[ai]]) < d_start:
            a = int(anc[ai])
            while stack and int(end[stack[-1]]) < int(start[a]):
                stack.pop()
            stack.append(a)
            ai += 1
        # Pop ancestors already closed.
        while stack and int(end[stack[-1]]) < d_start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            total += len(stack)
        else:
            if stack and int(parent_of[d]) == stack[-1]:
                total += 1
    return total


def structural_join_pairs(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> Iterator[tuple[int, int]]:
    """Yield the joining (ancestor, descendant) index pairs.

    Same sweep as :func:`stack_tree_join` but materialising output;
    used in tests and by the example applications that display matches.
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    start, end = tree.start, tree.end
    parent_of = tree.parent_index

    stack: list[int] = []
    ai = 0
    for d in desc:
        d_start = int(start[d])
        while ai < len(anc) and int(start[anc[ai]]) < d_start:
            a = int(anc[ai])
            while stack and int(end[stack[-1]]) < int(start[a]):
                stack.pop()
            stack.append(a)
            ai += 1
        while stack and int(end[stack[-1]]) < d_start:
            stack.pop()
        if axis is Axis.DESCENDANT:
            for a in stack:
                yield (a, int(d))
        else:
            if stack and int(parent_of[d]) == stack[-1]:
                yield (stack[-1], int(d))


def subtree_high(tree: LabeledTree, indices: np.ndarray) -> np.ndarray:
    """One-past-last-descendant pre-order index for each node in ``indices``.

    Pre-order contiguity: the descendants of node ``v`` occupy exactly
    the pre-order slots ``(v, subtree_high(v))``, so ancestor tests over
    sorted node lists reduce to binary searches on this array.
    """
    return np.searchsorted(tree.start, tree.end[indices])


def _descendant_ranges(
    tree: LabeledTree, anc: np.ndarray, desc: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-ancestor half-open ranges of matching positions in ``desc``."""
    high = subtree_high(tree, anc)
    lo = np.searchsorted(desc, anc, side="right")
    hi = np.searchsorted(desc, high, side="left")
    return lo, hi


def _child_axis_keep(anc: np.ndarray, parents: np.ndarray) -> np.ndarray:
    """Mask of ``parents`` entries present in the sorted ``anc`` list.

    Binary-search membership: ``O(|desc| log |anc|)`` with no
    tree-sized scratch allocation, so a highly selective parent-child
    step stays proportional to its operands.
    """
    slots = np.minimum(np.searchsorted(anc, parents), anc.size - 1)
    return (parents >= 0) & (anc[slots] == parents)


def vectorized_join_count(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> int:
    """Count joining pairs without materialising them (columnar).

    Exact integer count, identical to :func:`stack_tree_join`.  Both
    input lists must be sorted ascending (the catalog produces them that
    way).
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    if anc.size == 0 or desc.size == 0:
        return 0
    if axis is Axis.DESCENDANT:
        lo, hi = _descendant_ranges(tree, anc, desc)
        return int((hi - lo).sum())
    parents = tree.parent_index[desc]
    return int(np.count_nonzero(_child_axis_keep(anc, parents)))


def vectorized_join_pairs(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
    axis: Axis = Axis.DESCENDANT,
) -> tuple[np.ndarray, np.ndarray]:
    """Enumerate joining pairs as two aligned int64 arrays (columnar).

    Returns ``(ancestors, descendants)`` with one entry per joining
    pair -- the same pair set as :func:`structural_join_pairs`, but
    grouped by ancestor (ascending) instead of by descendant.  Both
    input lists must be sorted ascending.
    """
    anc = np.asarray(ancestor_indices, dtype=np.int64)
    desc = np.asarray(descendant_indices, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    if anc.size == 0 or desc.size == 0:
        return empty, empty
    if axis is Axis.DESCENDANT:
        lo, hi = _descendant_ranges(tree, anc, desc)
        pair_anc = np.repeat(anc, hi - lo)
        pair_desc = desc[expand_ranges(lo, hi)]
        return pair_anc, pair_desc
    parents = tree.parent_index[desc]
    keep = _child_axis_keep(anc, parents)
    return parents[keep], desc[keep]


def nested_loop_join_count(
    tree: LabeledTree,
    ancestor_indices: np.ndarray,
    descendant_indices: np.ndarray,
) -> int:
    """Quadratic reference join used only to validate the merge join."""
    total = 0
    for a in np.asarray(ancestor_indices, dtype=np.int64):
        for d in np.asarray(descendant_indices, dtype=np.int64):
            if tree.is_ancestor(int(a), int(d)):
                total += 1
    return total
