"""Twig (pattern tree) queries: model, parsing, and exact evaluation.

* :mod:`repro.query.pattern` -- the pattern-tree model of paper
  Section 2 (nodes labeled with predicates, ancestor-descendant or
  parent-child edges).
* :mod:`repro.query.xpath` -- a mini-XPath parser building pattern
  trees from expressions like ``//department/faculty[.//TA][.//RA]``.
* :mod:`repro.query.matcher` -- exact match counting by dynamic
  programming over the labeled tree (the "Real Result" columns).
* :mod:`repro.query.structjoin` -- the stack-based structural join, the
  physical operator a TIMBER-style optimizer schedules; also counts and
  enumerates pairs for ground truth.
"""

from repro.query.matcher import count_matches, count_pairs
from repro.query.pattern import Axis, PatternNode, PatternTree
from repro.query.structjoin import (
    stack_tree_join,
    structural_join_pairs,
    vectorized_join_count,
    vectorized_join_pairs,
)
from repro.query.xpath import parse_xpath

__all__ = [
    "Axis",
    "PatternNode",
    "PatternTree",
    "count_matches",
    "count_pairs",
    "parse_xpath",
    "stack_tree_join",
    "structural_join_pairs",
    "vectorized_join_count",
    "vectorized_join_pairs",
]
