"""Pattern trees ("twigs", paper Section 2).

A query is a small rooted node-labeled tree.  Each node carries a
predicate; each edge carries an axis:

* :attr:`Axis.DESCENDANT` -- the paper's default: the mapped data node
  of the child pattern node must be a proper descendant of the mapped
  data node of the parent pattern node.
* :attr:`Axis.CHILD` -- parent-child, supported by the exact matcher
  and discussed in the paper's future work; the histogram estimators
  treat it as descendant (documented approximation, tested in the
  ablation benches).

A *match* is a total mapping from pattern nodes to data nodes that
satisfies all node predicates and all edge relationships; the answer
size of a query is its number of matches.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, Optional

from repro.predicates.base import Predicate, TagPredicate


class Axis(Enum):
    """Edge semantics between a pattern node and its parent."""

    DESCENDANT = "descendant"
    CHILD = "child"

    @property
    def symbol(self) -> str:
        return "//" if self is Axis.DESCENDANT else "/"


class PatternNode:
    """One node of a pattern tree."""

    def __init__(
        self,
        predicate: Predicate,
        axis: Axis = Axis.DESCENDANT,
    ) -> None:
        self.predicate = predicate
        #: Axis connecting this node to its parent (ignored at the root).
        self.axis = axis
        self.children: list["PatternNode"] = []
        self.parent: Optional["PatternNode"] = None

    def add_child(
        self, predicate: Predicate, axis: Axis = Axis.DESCENDANT
    ) -> "PatternNode":
        """Create and attach a child pattern node; returns the child."""
        child = PatternNode(predicate, axis)
        child.parent = self
        self.children.append(child)
        return child

    def attach(self, child: "PatternNode") -> "PatternNode":
        """Attach an existing subtree as a child; returns the child."""
        child.parent = self
        self.children.append(child)
        return child

    # -- traversal ---------------------------------------------------------

    def iter_nodes(self) -> Iterator["PatternNode"]:
        """Pre-order over the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def post_order(self) -> Iterator["PatternNode"]:
        """Post-order over the subtree rooted here (children first)."""
        stack: list[tuple[PatternNode, bool]] = [(self, False)]
        while stack:
            node, visited = stack.pop()
            if visited:
                yield node
                continue
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))

    def is_leaf(self) -> bool:
        return not self.children

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_nodes())

    def to_xpath(self) -> str:
        """Render the subtree in the mini-XPath syntax (lossless for
        patterns built from tag predicates)."""
        label = self.predicate.name
        predicates = "".join(
            f"[.{child.axis.symbol}{child.to_xpath()}]" for child in self.children[:-1]
        )
        if self.children:
            last = self.children[-1]
            return f"{label}{predicates}{last.axis.symbol}{last.to_xpath()}"
        return f"{label}{predicates}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternNode({self.predicate.name!r}, children={len(self.children)})"


class PatternTree:
    """A rooted twig query."""

    def __init__(self, root: PatternNode) -> None:
        self.root = root

    @classmethod
    def simple_pair(
        cls,
        ancestor: Predicate,
        descendant: Predicate,
        axis: Axis = Axis.DESCENDANT,
    ) -> "PatternTree":
        """The primitive two-node pattern of paper Section 3.2."""
        root = PatternNode(ancestor)
        root.add_child(descendant, axis)
        return cls(root)

    @classmethod
    def path(cls, *tags: str, axis: Axis = Axis.DESCENDANT) -> "PatternTree":
        """A linear path of tag predicates, e.g. ``path("a", "b", "c")``."""
        if not tags:
            raise ValueError("path needs at least one tag")
        root = PatternNode(TagPredicate(tags[0]))
        node = root
        for tag in tags[1:]:
            node = node.add_child(TagPredicate(tag), axis)
        return cls(root)

    def size(self) -> int:
        return self.root.size()

    def nodes(self) -> list[PatternNode]:
        return list(self.root.iter_nodes())

    def predicates(self) -> list[Predicate]:
        return [node.predicate for node in self.root.iter_nodes()]

    def has_child_axis(self) -> bool:
        """True if any edge uses the parent-child axis."""
        return any(
            node.axis is Axis.CHILD
            for node in self.root.iter_nodes()
            if node.parent is not None
        )

    def to_xpath(self) -> str:
        return "//" + self.root.to_xpath()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatternTree({self.to_xpath()!r})"
